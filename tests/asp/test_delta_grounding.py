"""Unit and property tests for delta-grounding.

The contract under test: after any sequence of :meth:`DeltaGrounding.repair`
calls, :meth:`DeltaGrounding.to_ground_program` has exactly the same answer
sets as grounding the current fact set from scratch.  The scenarios cover
the cases where naive incremental maintenance goes wrong:

* retraction of a fact whose *absence* enables a rule (negation as failure:
  the instance was blocked by a certainly-true negative literal),
* retraction inside a positive cycle with and without alternative support
  (the delete-and-rederive overdeletion/rescue dance),
* constraints appearing/disappearing with their facts,
* randomized slide sequences over a program mixing recursion, choice, and
  constraints.
"""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asp.control import Control
from repro.asp.grounding.grounder import DeltaGrounding, Grounder, GroundingCache
from repro.asp.solving.solver import StableModelSolver
from repro.asp.syntax.parser import parse_program
from tests.conftest import make_atom


def answers_from_scratch(program, facts):
    control = Control(program)
    control.add_facts(facts)
    return {frozenset(model.atoms) for model in control.solve().models}


def answers_of_state(state):
    return {frozenset(model) for model in StableModelSolver(state.to_ground_program()).models(limit=None)}


MIXED_RULES = """
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
blocked(X) :- node(X), not open(X).
pick(X) :- cand(X), not drop(X).
drop(X) :- cand(X), not pick(X).
:- pick(X), bad(X).
"""


class TestDeltaGroundingEquivalence:
    def test_initial_state_matches_from_scratch(self):
        program = parse_program(MIXED_RULES)
        facts = [make_atom("edge", 1, 2), make_atom("edge", 2, 3), make_atom("node", 1), make_atom("cand", 1)]
        state = DeltaGrounding(program.with_facts(facts))
        assert answers_of_state(state) == answers_from_scratch(program, facts)

    def test_negative_literal_resurrection(self):
        # h is blocked while f is a fact; retracting f must revive the
        # instance even though it never fired in the initial instantiation.
        program = parse_program("h(X) :- b(X), not f(X).")
        state = DeltaGrounding(program.with_facts([make_atom("b", 1), make_atom("f", 1)]))
        assert answers_of_state(state) == answers_from_scratch(program, [make_atom("b", 1), make_atom("f", 1)])
        state.repair({make_atom("b", 1)})
        assert answers_of_state(state) == answers_from_scratch(program, [make_atom("b", 1)])
        [answer] = answers_of_state(state)
        assert {str(atom) for atom in answer} == {"b(1)", "h(1)"}

    def test_cyclic_support_overdelete_and_rescue(self):
        program = parse_program("a :- b.\nb :- a.\na :- f.\nb :- g.")
        state = DeltaGrounding(program.with_facts([make_atom("f"), make_atom("g")]))
        # Retract f: the a<->b cycle must survive through g's support.
        state.repair({make_atom("g")})
        assert answers_of_state(state) == answers_from_scratch(program, [make_atom("g")])
        # Retract g too: the unfounded cycle must die.
        state.repair(set())
        assert answers_of_state(state) == answers_from_scratch(program, [])

    def test_constraint_appears_and_disappears(self):
        program = parse_program("good(X) :- item(X).\n:- item(X), poison(X).")
        items = [make_atom("item", 1), make_atom("item", 2)]
        state = DeltaGrounding(program.with_facts(items))
        assert len(answers_of_state(state)) == 1
        state.repair(set(items) | {make_atom("poison", 1)})
        assert answers_of_state(state) == set()  # constraint fires: unsatisfiable
        state.repair(set(items))
        assert len(answers_of_state(state)) == 1

    def test_repair_to_empty_and_back(self):
        program = parse_program("h(X) :- b(X).")
        state = DeltaGrounding(program.with_facts([make_atom("b", 1)]))
        state.repair(set())
        assert answers_of_state(state) == answers_from_scratch(program, [])
        state.repair({make_atom("b", 2)})
        assert answers_of_state(state) == answers_from_scratch(program, [make_atom("b", 2)])

    def test_repair_stats_account_for_churn(self):
        program = parse_program("h(X) :- b(X).")
        state = DeltaGrounding(program.with_facts([make_atom("b", 1), make_atom("b", 2)]))
        stats = state.repair({make_atom("b", 2), make_atom("b", 3)})
        assert stats.retracted == 1
        assert stats.asserted == 1
        assert stats.repair_size == 2
        assert stats.rules_deleted == 1  # h(1) :- b(1).
        assert stats.rules_added == 1  # h(3) :- b(3).

    def test_repair_is_noop_for_identical_facts(self):
        program = parse_program("h(X) :- b(X).")
        facts = {make_atom("b", 1)}
        state = DeltaGrounding(program.with_facts(facts))
        stats = state.repair(facts)
        assert stats.repair_size == 0
        assert stats.rules_deleted == stats.rules_added == 0

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=12), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_randomized_slides_stay_equivalent(self, sizes, rng):
        program = parse_program(MIXED_RULES)
        universe = (
            [make_atom("edge", i, j) for i in range(4) for j in range(4)]
            + [make_atom(p, i) for p in ("node", "open", "cand", "bad") for i in range(4)]
        )
        facts = set(rng.sample(universe, min(10, len(universe))))
        state = DeltaGrounding(program.with_facts(facts))
        for size in sizes:
            facts = set(rng.sample(universe, min(size, len(universe))))
            state.repair(facts)
            assert answers_of_state(state) == answers_from_scratch(program, facts)


class TestGroundIncremental:
    def make_program(self, *values):
        program = parse_program("h(X) :- b(X), not blocked(X).\nblocked(X) :- c(X).")
        return program.with_facts([make_atom("b", v) for v in values])

    def test_outcome_progression(self):
        cache = GroundingCache()
        first = self.make_program(1, 2, 3)
        _, outcome, stats = cache.ground_incremental(first, track=0)
        assert outcome == "full" and stats is None
        _, outcome, _ = cache.ground_incremental(first, track=0)
        assert outcome == "hit"  # exact signature recurrence
        ground, outcome, stats = cache.ground_incremental(self.make_program(2, 3, 4), track=0)
        assert outcome == "repair"
        assert stats is not None and stats.repair_size == 2
        # The repaired program equals a from-scratch grounding.
        scratch = Grounder(self.make_program(2, 3, 4)).ground()
        assert {frozenset(m) for m in StableModelSolver(ground).models(limit=None)} == {
            frozenset(m) for m in StableModelSolver(scratch).models(limit=None)
        }

    def test_tracks_are_independent(self):
        cache = GroundingCache()
        cache.ground_incremental(self.make_program(1), track=0)
        _, outcome, _ = cache.ground_incremental(self.make_program(2), track=1)
        assert outcome == "full"  # track 1 has no state yet
        _, outcome, _ = cache.ground_incremental(self.make_program(2, 3), track=1)
        assert outcome == "repair"
        _, outcome, _ = cache.ground_incremental(self.make_program(1, 4), track=0)
        assert outcome == "repair"  # track 0 still diffs against {b(1)}

    def test_over_budget_churn_falls_back_to_plain_ground(self):
        cache = GroundingCache(max_repair_fraction=0.5)
        cache.ground_incremental(self.make_program(1, 2, 3, 4), track=0)
        before = cache.statistics()["delta_repairs"]
        ground, outcome, stats = cache.ground_incremental(self.make_program(5, 6, 7, 8), track=0)
        assert outcome == "full" and stats is None
        assert cache.statistics()["delta_repairs"] == before
        scratch = Grounder(self.make_program(5, 6, 7, 8)).ground()
        assert {frozenset(m) for m in StableModelSolver(ground).models(limit=None)} == {
            frozenset(m) for m in StableModelSolver(scratch).models(limit=None)
        }
        # The stale state self-heals once a window overlaps it again.
        _, outcome, _ = cache.ground_incremental(self.make_program(1, 2, 3, 9), track=0)
        assert outcome == "repair"

    def test_statistics_and_clear(self):
        cache = GroundingCache()
        cache.ground_incremental(self.make_program(1, 2), track=0)
        cache.ground_incremental(self.make_program(2, 3), track=0)
        statistics = cache.statistics()
        assert statistics["delta_states"] == 1.0
        assert statistics["delta_repairs"] == 1.0
        assert statistics["repaired_atoms"] == 2.0
        cache.clear()
        statistics = cache.statistics()
        assert statistics["delta_states"] == 0.0
        assert statistics["delta_repairs"] == 0.0

    def test_delta_state_lru_eviction(self):
        cache = GroundingCache(max_delta_states=2)
        for track in range(3):
            cache.ground_incremental(self.make_program(track), track=track)
        assert cache.statistics()["delta_states"] == 2.0
        # Track 0 was evicted: its next window is a full rebuild, not a repair.
        _, outcome, _ = cache.ground_incremental(self.make_program(0, 9), track=0)
        assert outcome == "full"

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            GroundingCache(max_delta_states=0)
        with pytest.raises(ValueError):
            GroundingCache(max_repair_fraction=0.0)
        with pytest.raises(ValueError):
            GroundingCache(max_repair_fraction=1.5)

    def test_zero_overlap_slide_is_plain_ground_not_repair(self):
        # A window sharing nothing with the state: "repairing" would redo a
        # full reground plus the deletion cascade.  Must report "full" with
        # no stats and must not bump the repair counters.
        cache = GroundingCache()
        cache.ground_incremental(self.make_program(1, 2), track=0)
        ground, outcome, stats = cache.ground_incremental(self.make_program(3, 4), track=0)
        assert outcome == "full" and stats is None
        assert cache.statistics()["delta_repairs"] == 0.0
        scratch = Grounder(self.make_program(3, 4)).ground()
        assert {frozenset(m) for m in StableModelSolver(ground).models(limit=None)} == {
            frozenset(m) for m in StableModelSolver(scratch).models(limit=None)
        }

    def test_pickle_ships_configuration_only(self):
        import pickle

        cache = GroundingCache(max_entries=7, max_delta_states=3, max_repair_fraction=0.5)
        cache.ground_incremental(self.make_program(1), track=0)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_entries == 7
        assert clone.max_delta_states == 3
        assert clone.max_repair_fraction == 0.5
        assert len(clone) == 0
        assert clone.statistics()["delta_states"] == 0.0
