"""Property-based and unit tests for the window-to-window grounding cache.

The cache contract (what makes it safe to drop into the streaming hot path):

* correctness -- a cached grounding is indistinguishable from regrounding:
  cache hits return a ground program *equal* to the fresh one;
* isolation -- the returned object is never aliased with the stored entry,
  and mutating the caller's input fact list (or a returned ground program)
  never leaks a stale entry into later lookups;
* the key is the fact *signature*: fact order and duplicates don't matter,
  fact content does;
* bounded LRU memory and accurate hit/miss accounting.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asp.control import Control
from repro.asp.grounding.grounder import Grounder, GroundingCache
from repro.asp.syntax.parser import parse_program
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streamrule.reasoner import Reasoner
from tests.conftest import make_atom

RULES = """\
reach(X) :- edge(X).
reach(Y) :- reach(X), link(X, Y).
blocked(X) :- reach(X), not open(X).
"""

edge_atoms = st.builds(make_atom, st.just("edge"), st.integers(min_value=0, max_value=5))
link_atoms = st.builds(
    make_atom, st.just("link"), st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)
)
open_atoms = st.builds(make_atom, st.just("open"), st.integers(min_value=0, max_value=5))
fact_lists = st.lists(st.one_of(edge_atoms, link_atoms, open_atoms), max_size=10)


def fresh_ground(facts):
    return Grounder(parse_program(RULES), extra_facts=facts).ground()


def semantically_equal(one, other):
    """Ground programs equal up to rule order.

    The cache key is fact-*set* based (stable models are insensitive to fact
    order), but ``GroundProgram.rules`` is a list whose order follows fact
    insertion order -- so a hit served for a reordered window is equivalent
    to, not list-identical with, a fresh regrounding.
    """
    return (
        one.facts == other.facts
        and one.possible_atoms == other.possible_atoms
        and set(one.rules) == set(other.rules)
    )


@given(fact_lists)
@settings(max_examples=60, deadline=None)
def test_cache_hit_returns_object_equal_ground_program(facts):
    cache = GroundingCache()
    program = parse_program(RULES).with_facts(facts)
    first, first_hit = cache.ground(program)
    second, second_hit = cache.ground(program)
    assert (first_hit, second_hit) == (False, True)
    assert second == first
    assert second is not first  # fresh copy, never the cached object itself
    assert second == fresh_ground(facts)  # and indistinguishable from regrounding


@given(fact_lists, fact_lists)
@settings(max_examples=60, deadline=None)
def test_mutating_input_facts_never_leaks_stale_entries(facts, other_facts):
    cache = GroundingCache()
    program = parse_program(RULES)
    mutable_facts = list(facts)
    cache.ground(program.with_facts(mutable_facts))
    # The caller reuses and mutates its fact list between windows -- the key
    # snapshots the facts, so the next window grounds its *own* content.
    mutable_facts.clear()
    mutable_facts.extend(other_facts)
    ground, _ = cache.ground(program.with_facts(mutable_facts))
    assert semantically_equal(ground, fresh_ground(other_facts))


@given(fact_lists)
@settings(max_examples=60, deadline=None)
def test_mutating_a_returned_ground_program_does_not_poison_the_cache(facts):
    cache = GroundingCache()
    program = parse_program(RULES).with_facts(facts)
    first, _ = cache.ground(program)
    first.facts.add(make_atom("edge", 999))
    first.possible_atoms.clear()
    first.rules.clear()
    second, hit = cache.ground(program)
    assert hit is True
    assert second == fresh_ground(facts)


@given(st.lists(edge_atoms, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_key_ignores_fact_order_and_duplicates(facts):
    program = parse_program(RULES)
    shuffled = list(reversed(facts)) + [facts[0]]
    key_a = GroundingCache.key_for(program.with_facts(facts))
    key_b = GroundingCache.key_for(program.with_facts(shuffled))
    assert key_a == key_b
    key_c = GroundingCache.key_for(program.with_facts(facts + [make_atom("edge", 77)]))
    assert key_c != key_a


def test_structurally_equal_programs_share_entries():
    # Two separate parses produce distinct Rule objects; the key is based on
    # the rendered rules (memoized per object identity), so they must still
    # land on the same cache entry.
    cache = GroundingCache()
    facts = [make_atom("edge", 1)]
    _, first_hit = cache.ground(parse_program(RULES).with_facts(facts))
    _, second_hit = cache.ground(parse_program(RULES).with_facts(facts))
    assert (first_hit, second_hit) == (False, True)


def test_key_distinguishes_programs():
    facts = [make_atom("edge", 1)]
    key_a = GroundingCache.key_for(parse_program(RULES).with_facts(facts))
    key_b = GroundingCache.key_for(parse_program("reach(X) :- edge(X).").with_facts(facts))
    assert key_a != key_b


def test_lru_eviction_respects_max_entries():
    cache = GroundingCache(max_entries=2)
    program = parse_program(RULES)
    windows = [[make_atom("edge", index)] for index in range(3)]
    for window in windows:
        cache.ground(program.with_facts(window))
    assert len(cache) == 2
    # Oldest entry (edge(0)) was evicted; regrounding it is a miss.
    _, hit = cache.ground(program.with_facts(windows[0]))
    assert hit is False
    # Newest entries are still warm.
    _, hit = cache.ground(program.with_facts(windows[2]))
    assert hit is True


def test_hit_miss_accounting_and_clear():
    cache = GroundingCache()
    program = parse_program(RULES).with_facts([make_atom("edge", 1)])
    cache.ground(program)
    cache.ground(program)
    cache.ground(program)
    assert (cache.hits, cache.misses) == (2, 1)
    assert cache.hit_rate == 2 / 3
    cache.clear()
    assert (len(cache), cache.hits, cache.misses, cache.hit_rate) == (0, 0, 0, 0.0)


def test_pickling_ships_configuration_not_contents():
    cache = GroundingCache(max_entries=7)
    cache.ground(parse_program(RULES).with_facts([make_atom("edge", 1)]))
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.max_entries == 7
    assert len(clone) == 0 and clone.hits == 0 and clone.misses == 0


class TestControlIntegration:
    def test_control_serves_repeat_windows_from_cache(self):
        cache = GroundingCache()
        program = parse_program(RULES)
        facts = [make_atom("edge", 0), make_atom("link", 0, 1)]

        first = Control(program, grounding_cache=cache)
        first.add_facts(facts)
        result_a = first.solve()
        assert first.ground_from_cache is False

        second = Control(program, grounding_cache=cache)
        second.add_facts(facts)
        result_b = second.solve()
        assert second.ground_from_cache is True
        assert {m.atoms for m in result_a.models} == {m.atoms for m in result_b.models}

    def test_control_without_cache_reports_none(self):
        control = Control(parse_program(RULES))
        control.solve()
        assert control.ground_from_cache is None


class TestReasonerIntegration:
    def test_repeat_window_hits_and_answers_are_identical(self, motivating_window):
        reasoner = Reasoner(
            traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
        )
        first = reasoner.reason(motivating_window)
        second = reasoner.reason(motivating_window)
        assert first.metrics.cache_hits == 0 and first.metrics.cache_misses == 1
        assert second.metrics.cache_hits == 1 and second.metrics.cache_misses == 0
        assert first.answers == second.answers

    def test_cached_and_uncached_reasoners_agree(self, motivating_window):
        cached = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache())
        plain = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        cached.reason(motivating_window)  # warm the cache
        assert cached.reason(motivating_window).answers == plain.reason(motivating_window).answers
