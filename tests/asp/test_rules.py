"""Unit tests for rules and their body views."""

import pytest

from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.rules import Rule
from repro.asp.syntax.terms import Constant, Variable


def _x():
    return Variable("X")


class TestRuleClassification:
    def test_fact(self):
        rule = Rule(head=(Atom("p", (Constant(1),)),))
        assert rule.is_fact
        assert rule.is_normal
        assert not rule.is_constraint

    def test_constraint(self):
        rule = Rule(body=(Literal(Atom("p")),))
        assert rule.is_constraint
        assert not rule.is_fact

    def test_disjunctive(self):
        rule = Rule(head=(Atom("a"), Atom("b")), body=(Literal(Atom("c")),))
        assert rule.is_disjunctive
        assert not rule.is_normal

    def test_groundness(self):
        ground_rule = Rule(head=(Atom("p", (Constant(1),)),), body=(Literal(Atom("q", (Constant(1),))),))
        assert ground_rule.is_ground()
        non_ground = Rule(head=(Atom("p", (_x(),)),), body=(Literal(Atom("q", (_x(),))),))
        assert not non_ground.is_ground()


class TestBodyViews:
    def setup_method(self):
        self.rule = Rule(
            head=(Atom("traffic_jam", (_x(),)),),
            body=(
                Literal(Atom("very_slow_speed", (_x(),))),
                Literal(Atom("many_cars", (_x(),))),
                Literal(Atom("traffic_light", (_x(),)), positive=False),
                Comparison("<", Variable("Y"), Constant(20)),
            ),
        )

    def test_positive_body(self):
        assert [literal.predicate for literal in self.rule.positive_body] == ["very_slow_speed", "many_cars"]

    def test_negative_body(self):
        assert [literal.predicate for literal in self.rule.negative_body] == ["traffic_light"]

    def test_comparisons(self):
        assert len(self.rule.comparisons) == 1
        assert str(self.rule.comparisons[0]) == "Y<20"

    def test_body_literals_excludes_comparisons(self):
        assert len(self.rule.body_literals) == 3

    def test_predicates(self):
        assert self.rule.head_predicates() == {"traffic_jam"}
        assert self.rule.body_predicates() == {"very_slow_speed", "many_cars", "traffic_light"}
        assert "traffic_jam" in self.rule.predicates()

    def test_variables(self):
        assert {variable.name for variable in self.rule.variables()} == {"X", "Y"}

    def test_substitute(self):
        ground = self.rule.substitute({Variable("X"): Constant("dangan"), Variable("Y"): Constant(5)})
        assert ground.is_ground()
        assert "traffic_jam(dangan)" in str(ground)


class TestRuleValidationAndRendering:
    def test_head_must_contain_atoms(self):
        with pytest.raises(TypeError):
            Rule(head=(Literal(Atom("p")),))  # a literal is not a valid head element

    def test_body_must_contain_literals_or_comparisons(self):
        with pytest.raises(TypeError):
            Rule(head=(Atom("p"),), body=(Atom("q"),))

    def test_str_fact(self):
        assert str(Rule(head=(Atom("p", (Constant(1),)),))) == "p(1)."

    def test_str_constraint(self):
        assert str(Rule(body=(Literal(Atom("p")),))) == ":- p."

    def test_str_normal_rule(self):
        rule = Rule(head=(Atom("a"),), body=(Literal(Atom("b")), Literal(Atom("c"), positive=False)))
        assert str(rule) == "a :- b, not c."

    def test_str_disjunctive_rule(self):
        rule = Rule(head=(Atom("a"), Atom("b")), body=(Literal(Atom("c")),))
        assert str(rule) == "a | b :- c."
