"""Unit tests for rule safety checking."""

import pytest

from repro.asp.errors import SafetyError
from repro.asp.grounding.safety import check_safety, is_safe, unsafe_variables
from repro.asp.syntax.parser import parse_program, parse_rule


class TestSafety:
    def test_safe_rule(self):
        assert is_safe(parse_rule("p(X) :- q(X)."))

    def test_head_variable_not_in_positive_body_is_unsafe(self):
        rule = parse_rule("p(X) :- q(Y).")
        assert not is_safe(rule)
        assert unsafe_variables(rule) == {"X"}

    def test_variable_only_in_negative_body_is_unsafe(self):
        rule = parse_rule("p(X) :- q(X), not r(Y).")
        assert unsafe_variables(rule) == {"Y"}

    def test_variable_only_in_comparison_is_unsafe(self):
        rule = parse_rule("p(X) :- q(X), Y < 3.")
        assert unsafe_variables(rule) == {"Y"}

    def test_comparison_variable_bound_by_positive_body_is_safe(self):
        assert is_safe(parse_rule("very_slow_speed(X) :- average_speed(X, Y), Y < 20."))

    def test_facts_are_safe(self):
        assert is_safe(parse_rule("p(1)."))

    def test_constraint_safety(self):
        assert is_safe(parse_rule(":- q(X), not r(X)."))
        assert not is_safe(parse_rule(":- not r(X)."))

    def test_check_safety_raises_with_rule_context(self):
        program = parse_program("ok(X) :- q(X). bad(X) :- q(Y).")
        with pytest.raises(SafetyError) as excinfo:
            check_safety(program)
        assert "X" in str(excinfo.value)
        assert excinfo.value.variables == frozenset({"X"})

    def test_check_safety_accepts_traffic_program(self, program_p, program_p_prime):
        check_safety(program_p)
        check_safety(program_p_prime)

    def test_disjunctive_head_safety(self):
        assert is_safe(parse_rule("a(X) | b(X) :- c(X)."))
        assert not is_safe(parse_rule("a(X) | b(Y) :- c(X)."))
