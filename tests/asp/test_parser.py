"""Unit tests for the ASP parser."""

import pytest

from repro.asp.errors import ParseError
from repro.asp.syntax.parser import parse_program, parse_rule, parse_term, tokenize
from repro.asp.syntax.terms import Constant, FunctionTerm, Variable
from repro.programs.traffic import PROGRAM_P_PRIME_TEXT, PROGRAM_P_TEXT


class TestTokenizer:
    def test_comments_and_whitespace_are_dropped(self):
        tokens = tokenize("a. % a comment\n  b.")
        assert [token.value for token in tokens] == ["a", ".", "b", "."]

    def test_line_numbers(self):
        tokens = tokenize("a.\nb.")
        assert tokens[0].line == 1
        assert tokens[2].line == 2

    def test_unknown_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("a :- b ? c.")


class TestTermParsing:
    def test_integer(self):
        assert parse_term("42") == Constant(42)

    def test_negative_integer(self):
        assert parse_term("-7") == Constant(-7)

    def test_symbolic_constant(self):
        assert parse_term("newcastle") == Constant("newcastle")

    def test_variable(self):
        assert parse_term("Speed") == Variable("Speed")

    def test_quoted_string(self):
        term = parse_term('"main street"')
        assert isinstance(term, Constant)
        assert term.value == "main street"
        assert term.quoted

    def test_function_term(self):
        term = parse_term("loc(1, north)")
        assert isinstance(term, FunctionTerm)
        assert term.name == "loc"
        assert term.arguments == (Constant(1), Constant("north"))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("1 2")


class TestRuleParsing:
    def test_fact(self):
        rule = parse_rule("average_speed(newcastle, 10).")
        assert rule.is_fact
        assert str(rule.head[0]) == "average_speed(newcastle,10)"

    def test_normal_rule_with_comparison_and_negation(self):
        rule = parse_rule("traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).")
        assert rule.head[0].predicate == "traffic_jam"
        assert [literal.predicate for literal in rule.positive_body] == ["very_slow_speed", "many_cars"]
        assert [literal.predicate for literal in rule.negative_body] == ["traffic_light"]

    def test_comparison_in_body(self):
        rule = parse_rule("very_slow_speed(X) :- average_speed(X, Y), Y < 20.")
        comparisons = rule.comparisons
        assert len(comparisons) == 1
        assert comparisons[0].operator == "<"

    def test_constraint(self):
        rule = parse_rule(":- traffic_jam(X), car_fire(X).")
        assert rule.is_constraint
        assert len(rule.positive_body) == 2

    def test_disjunction_with_pipe_and_semicolon(self):
        assert len(parse_rule("a(X) | b(X) :- c(X).").head) == 2
        assert len(parse_rule("a(X) ; b(X) :- c(X).").head) == 2

    def test_anonymous_variable_is_fresh(self):
        rule = parse_rule("p(X) :- q(X, _), r(_, X).")
        names = {variable.name for variable in rule.variables()}
        # X plus two distinct anonymous variables.
        assert len(names) == 3

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_rule("a :- b")

    def test_not_is_reserved(self):
        with pytest.raises(ParseError):
            parse_rule("a :- not not.")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("a. b.")


class TestProgramParsing:
    def test_parse_program_p(self):
        program = parse_program(PROGRAM_P_TEXT)
        assert len(program) == 6
        assert program.idb_predicates() == {
            "very_slow_speed",
            "many_cars",
            "traffic_jam",
            "car_fire",
            "give_notification",
        }

    def test_parse_program_p_prime_has_seven_rules(self):
        program = parse_program(PROGRAM_P_PRIME_TEXT)
        assert len(program) == 7

    def test_empty_program(self):
        assert len(parse_program("")) == 0
        assert len(parse_program("% only a comment\n")) == 0

    def test_round_trip(self):
        program = parse_program(PROGRAM_P_TEXT)
        assert len(parse_program(program.to_text())) == len(program)

    def test_comparison_operators_round_trip(self):
        program = parse_program("a(X) :- b(X, Y), Y >= 3, Y != 7, Y <= 100, Y = Y.")
        operators = {comparison.operator for comparison in program.rules[0].comparisons}
        assert operators == {">=", "!=", "<=", "="}
