"""Unit tests for the DPLL SAT core."""

from hypothesis import given, settings, strategies as st

from repro.asp.solving.sat import DPLLSolver, Satisfiability


class TestBasicSolving:
    def test_single_unit_clause(self):
        solver = DPLLSolver()
        solver.add_clause([1])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert model[1] is True

    def test_contradictory_units(self):
        solver = DPLLSolver()
        solver.add_clauses([[1], [-1]])
        status, _ = solver.solve()
        assert status is Satisfiability.UNSATISFIABLE

    def test_empty_clause_is_unsat(self):
        solver = DPLLSolver()
        solver.add_clause([])
        assert solver.solve()[0] is Satisfiability.UNSATISFIABLE

    def test_empty_problem_is_sat(self):
        assert DPLLSolver().solve()[0] is Satisfiability.SATISFIABLE

    def test_tautological_clause_is_ignored(self):
        solver = DPLLSolver()
        solver.add_clause([1, -1])
        assert solver.clause_count == 0
        assert solver.solve()[0] is Satisfiability.SATISFIABLE

    def test_implication_chain_propagates(self):
        solver = DPLLSolver()
        solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4]])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert all(model[variable] for variable in (1, 2, 3, 4))

    def test_requires_backtracking(self):
        # (x1 | x2) & (x1 | -x2) & (-x1 | x2) & (-x1 | -x2) is UNSAT.
        solver = DPLLSolver()
        solver.add_clauses([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert solver.solve()[0] is Satisfiability.UNSATISFIABLE

    def test_satisfiable_3sat_instance(self):
        solver = DPLLSolver()
        solver.add_clauses([[1, 2, 3], [-1, -2, 3], [1, -2, -3], [-1, 2, -3], [1, 2, -3]])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        # Verify the model against the clauses by hand.
        clauses = [[1, 2, 3], [-1, -2, 3], [1, -2, -3], [-1, 2, -3], [1, 2, -3]]
        for clause in clauses:
            assert any((literal > 0) == model[abs(literal)] for literal in clause)

    def test_assumptions(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        status, model = solver.solve(assumptions=[-1])
        assert status is Satisfiability.SATISFIABLE
        assert model[2] is True
        status, _ = solver.solve(assumptions=[-1, -2])
        assert status is Satisfiability.UNSATISFIABLE

    def test_contradictory_assumptions_are_unsat(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1])[0] is Satisfiability.UNSATISFIABLE

    def test_assumptions_do_not_mutate_the_solver(self):
        solver = DPLLSolver()
        solver.add_clauses([[1, 2], [-1, 2]])
        assert solver.solve(assumptions=[-2])[0] is Satisfiability.UNSATISFIABLE
        # The same solver answers SAT again: assumptions are call-scoped.
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert model[2] is True

    def test_unsat_under_assumptions_but_sat_without(self):
        # Classic even-loop shape: satisfiable, but pinning both choices off
        # kills every model.  The conflict surfaces during search (the
        # assumptions themselves propagate fine in isolation).
        solver = DPLLSolver()
        solver.add_clauses([[1, 2], [-1, -2], [3, 1], [3, 2]])
        assert solver.solve()[0] is Satisfiability.SATISFIABLE
        assert solver.solve(assumptions=[-3])[0] is Satisfiability.UNSATISFIABLE
        assert solver.solve()[0] is Satisfiability.SATISFIABLE


class TestWatchBookkeeping:
    def test_unit_clause_registers_a_single_watch_entry(self):
        solver = DPLLSolver()
        index = solver.add_clause([1])
        # A unit clause watches its only literal exactly once (the old code
        # registered the same entry twice).
        assert solver._watches[1] == [index]

    def test_binary_clause_watches_both_literals(self):
        solver = DPLLSolver()
        index = solver.add_clause([1, -2])
        assert index in solver._watches[1]
        assert index in solver._watches[-2]

    def test_propagation_moves_watches_off_falsified_literals(self):
        solver = DPLLSolver()
        index = solver.add_clause([1, 2, 3])
        solver.add_clause([-1])
        solver.add_clause([-2])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert model[3] is True
        # After solving, the ternary clause no longer watches two falsified
        # literals: at most one of its watch entries sits on a false literal.
        watch_literals = [
            literal for literal, indices in solver._watches.items() if index in indices
        ]
        assert len(watch_literals) == 2

    def test_removed_clause_no_longer_constrains(self):
        solver = DPLLSolver()
        solver.add_clause([1])
        index = solver.add_clause([-1])
        assert solver.solve()[0] is Satisfiability.UNSATISFIABLE
        solver.remove_clause(index)
        assert solver.clause_count == 1
        assert solver.removed_clause_count == 1
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert model[1] is True

    def test_remove_is_idempotent(self):
        solver = DPLLSolver()
        index = solver.add_clause([1, 2])
        solver.remove_clause(index)
        solver.remove_clause(index)
        assert solver.clause_count == 0

    def test_clause_literals_accessor(self):
        solver = DPLLSolver()
        index = solver.add_clause([2, -1])
        assert sorted(solver.clause_literals(index), key=abs) == [-1, 2]
        solver.remove_clause(index)
        assert solver.clause_literals(index) is None


def _clauses_strategy():
    literal = st.integers(min_value=1, max_value=6).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=4)
    return st.lists(clause, min_size=0, max_size=14)


def _assumptions_strategy():
    literal = st.integers(min_value=1, max_value=6).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    return st.lists(literal, min_size=0, max_size=4)


class TestAssumptionProperties:
    """solve(assumptions=) must agree with adding the assumptions as units."""

    @settings(max_examples=200, deadline=None)
    @given(clauses=_clauses_strategy(), assumptions=_assumptions_strategy())
    def test_assumption_solve_matches_unit_clause_solve(self, clauses, assumptions):
        assumed = DPLLSolver()
        assumed.add_clauses(clauses)
        status, model = assumed.solve(assumptions=assumptions)

        fresh = DPLLSolver()
        fresh.add_clauses(clauses)
        for literal in assumptions:
            fresh.add_clause([literal])
        reference_status, _ = fresh.solve()

        assert status is reference_status
        if status is Satisfiability.SATISFIABLE:
            # The returned model satisfies every clause and every assumption.
            # Tautological clauses are never stored, so their variables may
            # stay unassigned: treat an absent variable as false (the
            # tautology is then satisfied through its negative literal).
            for clause in clauses:
                assert any((literal > 0) == model.get(abs(literal), False) for literal in clause)
            for literal in assumptions:
                assert (literal > 0) == model[abs(literal)]

    @settings(max_examples=100, deadline=None)
    @given(clauses=_clauses_strategy(), assumptions=_assumptions_strategy())
    def test_solver_state_survives_assumption_solves(self, clauses, assumptions):
        solver = DPLLSolver()
        solver.add_clauses(clauses)
        baseline = solver.solve()[0]
        solver.solve(assumptions=assumptions)
        assert solver.solve()[0] is baseline


class TestModelEnumeration:
    def test_enumerate_all_models_of_free_variables(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        models = list(solver.iterate_models(relevant_variables=[1, 2]))
        assert len(models) == 3  # all assignments except (F, F)

    def test_limit_is_respected(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        assert len(list(solver.iterate_models(relevant_variables=[1, 2], limit=2))) == 2

    def test_new_variable_allocates_increasing_ids(self):
        solver = DPLLSolver()
        assert solver.new_variable() == 1
        assert solver.new_variable() == 2
        assert solver.variable_count == 2
