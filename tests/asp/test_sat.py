"""Unit tests for the DPLL SAT core."""


from repro.asp.solving.sat import DPLLSolver, Satisfiability


class TestBasicSolving:
    def test_single_unit_clause(self):
        solver = DPLLSolver()
        solver.add_clause([1])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert model[1] is True

    def test_contradictory_units(self):
        solver = DPLLSolver()
        solver.add_clauses([[1], [-1]])
        status, _ = solver.solve()
        assert status is Satisfiability.UNSATISFIABLE

    def test_empty_clause_is_unsat(self):
        solver = DPLLSolver()
        solver.add_clause([])
        assert solver.solve()[0] is Satisfiability.UNSATISFIABLE

    def test_empty_problem_is_sat(self):
        assert DPLLSolver().solve()[0] is Satisfiability.SATISFIABLE

    def test_tautological_clause_is_ignored(self):
        solver = DPLLSolver()
        solver.add_clause([1, -1])
        assert solver.clause_count == 0
        assert solver.solve()[0] is Satisfiability.SATISFIABLE

    def test_implication_chain_propagates(self):
        solver = DPLLSolver()
        solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4]])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert all(model[variable] for variable in (1, 2, 3, 4))

    def test_requires_backtracking(self):
        # (x1 | x2) & (x1 | -x2) & (-x1 | x2) & (-x1 | -x2) is UNSAT.
        solver = DPLLSolver()
        solver.add_clauses([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert solver.solve()[0] is Satisfiability.UNSATISFIABLE

    def test_satisfiable_3sat_instance(self):
        solver = DPLLSolver()
        solver.add_clauses([[1, 2, 3], [-1, -2, 3], [1, -2, -3], [-1, 2, -3], [1, 2, -3]])
        status, model = solver.solve()
        assert status is Satisfiability.SATISFIABLE
        # Verify the model against the clauses by hand.
        clauses = [[1, 2, 3], [-1, -2, 3], [1, -2, -3], [-1, 2, -3], [1, 2, -3]]
        for clause in clauses:
            assert any((literal > 0) == model[abs(literal)] for literal in clause)

    def test_assumptions(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        status, model = solver.solve(assumptions=[-1])
        assert status is Satisfiability.SATISFIABLE
        assert model[2] is True
        status, _ = solver.solve(assumptions=[-1, -2])
        assert status is Satisfiability.UNSATISFIABLE


class TestModelEnumeration:
    def test_enumerate_all_models_of_free_variables(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        models = list(solver.iterate_models(relevant_variables=[1, 2]))
        assert len(models) == 3  # all assignments except (F, F)

    def test_limit_is_respected(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        assert len(list(solver.iterate_models(relevant_variables=[1, 2], limit=2))) == 2

    def test_new_variable_allocates_increasing_ids(self):
        solver = DPLLSolver()
        assert solver.new_variable() == 1
        assert solver.new_variable() == 2
        assert solver.variable_count == 2
