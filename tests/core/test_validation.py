"""Unit tests for partitioning-plan validation (dependency safety)."""


from repro.core.decomposition import decompose
from repro.core.plan import PartitioningPlan
from repro.core.validation import validate_plan


class TestValidatePlan:
    def test_decomposed_plan_for_p_is_dependency_safe(self, input_graph_p, plan_p):
        report = validate_plan(input_graph_p, plan_p)
        assert report.is_dependency_safe
        assert report.violated_edges == ()
        assert report.unassigned_predicates == ()
        assert report.duplicated_predicates == ()

    def test_decomposed_plan_for_p_prime_is_dependency_safe(self, input_graph_p_prime, plan_p_prime):
        report = validate_plan(input_graph_p_prime, plan_p_prime)
        assert report.is_dependency_safe
        assert report.duplicated_predicates == ("car_number",)

    def test_splitting_a_dependency_edge_is_flagged(self, input_graph_p):
        # average_speed and car_number depend on each other (condition ii) but
        # this hand-made plan separates them.
        bad_plan = PartitioningPlan.from_communities(
            [["average_speed", "traffic_light"], ["car_number", "car_in_smoke", "car_speed", "car_location"]]
        )
        report = validate_plan(input_graph_p, bad_plan)
        assert not report.is_dependency_safe
        assert ("average_speed", "car_number") in report.violated_edges

    def test_random_style_plan_on_p_prime_is_unsafe(self, input_graph_p_prime):
        chunked = PartitioningPlan.from_communities(
            [["average_speed", "car_in_smoke"], ["car_number", "car_speed"], ["traffic_light", "car_location"]]
        )
        report = validate_plan(input_graph_p_prime, chunked)
        assert not report.is_dependency_safe
        assert len(report.violated_edges) >= 3

    def test_self_loops_are_not_flagged(self, input_graph_p):
        # traffic_light has a self-loop; putting it alone in a community is fine.
        plan = PartitioningPlan.from_communities(
            [["traffic_light"], ["average_speed", "car_number", "car_in_smoke", "car_speed", "car_location"]]
        )
        report = validate_plan(input_graph_p, plan)
        assert all("traffic_light" not in edge or edge[0] != edge[1] for edge in report.violated_edges)

    def test_unassigned_predicates_are_reported_but_safe_under_broadcast(self, input_graph_p):
        partial_plan = PartitioningPlan.from_communities(
            [["average_speed", "car_number", "traffic_light"]], unknown_policy="broadcast"
        )
        report = validate_plan(input_graph_p, partial_plan)
        assert set(report.unassigned_predicates) == {"car_in_smoke", "car_speed", "car_location"}
        # Broadcast routes unknown predicates everywhere, so no edge is split.
        assert report.is_dependency_safe

    def test_describe_mentions_violations(self, input_graph_p):
        bad_plan = PartitioningPlan.from_communities(
            [["average_speed", "traffic_light"], ["car_number", "car_in_smoke", "car_speed", "car_location"]]
        )
        text = validate_plan(input_graph_p, bad_plan).describe()
        assert "NOT dependency-safe" in text
        assert "average_speed" in text

    def test_resolution_sweep_plans_remain_safe(self, input_graph_p_prime):
        for resolution in (0.5, 1.0, 2.0, 4.0):
            plan = decompose(input_graph_p_prime, resolution=resolution).plan
            assert validate_plan(input_graph_p_prime, plan).is_dependency_safe
