"""Unit tests for the input dependency graph (Definitions 2 and 3)."""

from repro.asp.syntax.parser import parse_program
from repro.core.input_dependency import build_input_dependency_graph
from repro.programs.traffic import INPUT_PREDICATES


class TestConditionI:
    def test_co_occurring_input_predicates_are_connected(self):
        program = parse_program("h(X) :- a(X), b(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert graph.depend_on_each_other("a", "b")
        assert "i" in graph.conditions_for("a", "b")

    def test_self_loop_from_negative_input_literal(self):
        program = parse_program("h(X) :- a(X), not b(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert graph.has_self_loop("b")
        assert not graph.has_self_loop("a")


class TestConditionII:
    def test_chains_meeting_in_a_body_connect_their_inputs(self):
        # a -> d1, b -> d2, and d1, d2 co-occur in the body of h.
        program = parse_program("d1(X) :- a(X). d2(X) :- b(X). h(X) :- d1(X), d2(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert graph.depend_on_each_other("a", "b")
        assert "ii" in graph.conditions_for("a", "b")

    def test_longer_chains_also_connect(self):
        program = parse_program(
            "d1(X) :- a(X). e1(X) :- d1(X). d2(X) :- b(X). h(X) :- e1(X), d2(X)."
        )
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert graph.depend_on_each_other("a", "b")

    def test_inputs_in_unrelated_rules_stay_disconnected(self):
        program = parse_program("d1(X) :- a(X). d2(X) :- b(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert not graph.depend_on_each_other("a", "b")

    def test_mixed_condition_input_with_derived(self):
        # b co-occurs directly with d1 which is derived from a.
        program = parse_program("d1(X) :- a(X). h(X) :- d1(X), b(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert graph.depend_on_each_other("a", "b")


class TestConditionIII:
    def test_self_loop_inherited_from_negated_parent(self):
        # 'seen' is negated, so it has a self-loop; input 'a' feeds it directly.
        program = parse_program("seen(X) :- a(X). h(X) :- b(X), not seen(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        assert graph.has_self_loop("a")
        assert "iii" in graph.conditions_for("a", "a")

    def test_no_inherited_self_loop_without_direct_edge(self):
        program = parse_program("mid(X) :- a(X). seen(X) :- mid(X). h(X) :- b(X), not seen(X).")
        graph = build_input_dependency_graph(program, ["a", "b"])
        # Definition 2 (iii) requires a *direct* E_P2 edge from the input
        # predicate to the self-looped node; 'a' only reaches 'seen' via 'mid'.
        assert not graph.has_self_loop("a")
        assert graph.has_self_loop("mid") is False  # mid is not an input predicate node


class TestGraphShape:
    def test_nodes_are_exactly_the_input_predicates(self, program_p):
        graph = build_input_dependency_graph(program_p, INPUT_PREDICATES)
        assert set(graph.nodes) == set(INPUT_PREDICATES)

    def test_unused_input_predicate_is_isolated(self, program_p):
        graph = build_input_dependency_graph(program_p, list(INPUT_PREDICATES) + ["unused_sensor"])
        assert "unused_sensor" in graph.nodes
        assert not graph.graph.neighbors("unused_sensor")

    def test_connected_components_for_p(self, input_graph_p):
        components = {frozenset(component) for component in input_graph_p.connected_components()}
        assert components == {
            frozenset({"average_speed", "car_number", "traffic_light"}),
            frozenset({"car_in_smoke", "car_speed", "car_location"}),
        }

    def test_p_prime_graph_is_connected(self, input_graph_p_prime):
        assert input_graph_p_prime.is_connected()

    def test_repr_mentions_connectivity(self, input_graph_p):
        assert "connected=False" in repr(input_graph_p)
