"""Property-based tests for the combining handler semantics.

``combine_answer_sets`` implements ``Ans_P(W) = { ans_1 U ... U ans_n }``
(one pick per partition, unioned).  The properties locked in here:

* determinism -- same input, same output, including order;
* every combined set really is a union of one answer set per contributing
  partition, and every first-pick combination is representable;
* ``max_combinations`` caps the output and is a prefix of the uncapped run;
* partitions with no answer set (inconsistent sub-programs) are skipped and
  never blank out the other partitions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combining import combine_answer_sets
from tests.conftest import make_atom

# A small atom universe keeps collisions (shared atoms across partitions)
# frequent, which is where union semantics gets interesting.
atoms = st.builds(make_atom, st.just("p"), st.integers(min_value=0, max_value=7))
answer_sets = st.frozensets(atoms, max_size=4)
partitions = st.lists(answer_sets, max_size=3)  # one partition's answer sets
windows = st.lists(partitions, max_size=4)  # all partitions of one window


@given(windows)
@settings(max_examples=200)
def test_deterministic(per_partition):
    first = combine_answer_sets(per_partition, max_combinations=None)
    second = combine_answer_sets(per_partition, max_combinations=None)
    assert first == second


@given(windows)
@settings(max_examples=200)
def test_no_duplicates_and_all_are_unions_of_picks(per_partition):
    combined = combine_answer_sets(per_partition, max_combinations=None)
    assert len(combined) == len(set(combined))
    contributing = [list(answers) for answers in per_partition if list(answers)]
    if not contributing:
        assert combined == []
        return
    # Brute-force the expected set of unions (inputs are tiny by construction).
    import itertools

    expected = {frozenset().union(*picks) for picks in itertools.product(*contributing)}
    assert set(combined) == expected


@given(windows, st.integers(min_value=1, max_value=8))
@settings(max_examples=200)
def test_max_combinations_caps_and_is_a_prefix(per_partition, cap):
    capped = combine_answer_sets(per_partition, max_combinations=cap)
    uncapped = combine_answer_sets(per_partition, max_combinations=None)
    assert len(capped) <= cap
    assert capped == uncapped[: len(capped)]
    if len(uncapped) <= cap:
        assert capped == uncapped


@given(windows)
@settings(max_examples=200)
def test_inconsistent_partitions_are_skipped(per_partition):
    # Adding partitions with zero answer sets must not change the result.
    with_empty = list(per_partition) + [[], []]
    assert combine_answer_sets(with_empty, max_combinations=None) == combine_answer_sets(
        per_partition, max_combinations=None
    )


@given(partitions)
@settings(max_examples=100)
def test_single_partition_passes_through(answers):
    combined = combine_answer_sets([answers], max_combinations=None)
    # One partition: the combinations are exactly its distinct answer sets.
    seen = []
    for answer in answers:
        frozen = frozenset(answer)
        if frozen not in seen:
            seen.append(frozen)
    assert combined == seen


def test_all_partitions_inconsistent_yields_no_answers():
    assert combine_answer_sets([[], []], max_combinations=None) == []
