"""Unit tests for the combining handler semantics."""

from repro.core.combining import combine_answer_sets
from tests.conftest import make_atom


def answer(*names):
    return [make_atom(name) for name in names]


class TestCombineAnswerSets:
    def test_single_partition_passthrough(self):
        combined = combine_answer_sets([[answer("a"), answer("b")]])
        assert {frozenset(map(str, model)) for model in combined} == {frozenset({"a"}), frozenset({"b"})}

    def test_union_of_one_answer_per_partition(self):
        combined = combine_answer_sets([[answer("a")], [answer("b")]])
        assert len(combined) == 1
        assert {str(atom) for atom in combined[0]} == {"a", "b"}

    def test_cartesian_product_of_answer_sets(self):
        combined = combine_answer_sets([[answer("a1"), answer("a2")], [answer("b1"), answer("b2")]])
        rendered = {frozenset(str(atom) for atom in model) for model in combined}
        assert rendered == {
            frozenset({"a1", "b1"}),
            frozenset({"a1", "b2"}),
            frozenset({"a2", "b1"}),
            frozenset({"a2", "b2"}),
        }

    def test_empty_partition_answer_list_is_skipped(self):
        combined = combine_answer_sets([[answer("a")], []])
        assert len(combined) == 1
        assert {str(atom) for atom in combined[0]} == {"a"}

    def test_no_answers_at_all(self):
        assert combine_answer_sets([]) == []
        assert combine_answer_sets([[], []]) == []

    def test_duplicate_combinations_are_removed(self):
        combined = combine_answer_sets([[answer("a"), answer("a")], [answer("b")]])
        assert len(combined) == 1

    def test_max_combinations_cap(self):
        per_partition = [[answer(f"a{i}") for i in range(4)], [answer(f"b{i}") for i in range(4)]]
        combined = combine_answer_sets(per_partition, max_combinations=5)
        assert len(combined) == 5

    def test_unbounded_combinations(self):
        per_partition = [[answer(f"a{i}") for i in range(3)], [answer(f"b{i}") for i in range(3)]]
        assert len(combine_answer_sets(per_partition, max_combinations=None)) == 9

    def test_results_are_frozensets(self):
        combined = combine_answer_sets([[answer("a")]])
        assert all(isinstance(model, frozenset) for model in combined)
