"""Checks that the dependency analysis reproduces the paper's Figures 2-5 exactly."""

from repro.core.decomposition import decompose
from repro.core.extended_dependency import ExtendedDependencyGraph


class TestFigure2ExtendedDependencyGraphOfP:
    """Figure 2: the extended dependency graph G_P of Listing 1."""

    def test_directed_edges(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        expected_directed = {
            ("average_speed", "very_slow_speed"),
            ("car_number", "many_cars"),
            ("very_slow_speed", "traffic_jam"),
            ("many_cars", "traffic_jam"),
            ("traffic_light", "traffic_jam"),
            ("car_in_smoke", "car_fire"),
            ("car_speed", "car_fire"),
            ("car_location", "car_fire"),
            ("traffic_jam", "give_notification"),
            ("car_fire", "give_notification"),
        }
        assert graph.head_edges == expected_directed

    def test_undirected_edges(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        expected_pairs = {
            ("many_cars", "very_slow_speed"),
            ("many_cars", "traffic_light"),
            ("traffic_light", "very_slow_speed"),
            ("car_in_smoke", "car_speed"),
            ("car_in_smoke", "car_location"),
            ("car_location", "car_speed"),
            ("traffic_light", "traffic_light"),  # self-loop from 'not traffic_light(X)'
        }
        actual = {tuple(sorted(pair)) for pair in graph.body_edge_pairs()}
        assert actual == {tuple(sorted(pair)) for pair in expected_pairs}


class TestFigure3InputDependencyGraphOfP:
    """Figure 3: the input dependency graph of P w.r.t. inpre(P)."""

    def test_exact_edge_set(self, input_graph_p):
        expected = {
            frozenset({"average_speed", "car_number"}),
            frozenset({"average_speed", "traffic_light"}),
            frozenset({"car_number", "traffic_light"}),
            frozenset({"traffic_light"}),  # self-loop
            frozenset({"car_in_smoke", "car_speed"}),
            frozenset({"car_in_smoke", "car_location"}),
            frozenset({"car_speed", "car_location"}),
        }
        actual = {frozenset((first, second)) for first, second in input_graph_p.edges()}
        assert actual == expected

    def test_two_components(self, input_graph_p):
        assert not input_graph_p.is_connected()
        assert len(input_graph_p.connected_components()) == 2

    def test_self_loops(self, input_graph_p):
        assert input_graph_p.self_loops() == {"traffic_light"}


class TestFigure4InputDependencyGraphOfPPrime:
    """Figure 4: adding rule r7 connects the graph through car_number."""

    def test_car_number_now_links_to_the_car_component(self, input_graph_p_prime):
        assert input_graph_p_prime.depend_on_each_other("car_number", "car_in_smoke")
        assert input_graph_p_prime.depend_on_each_other("car_number", "car_speed")
        assert input_graph_p_prime.depend_on_each_other("car_number", "car_location")

    def test_graph_is_connected(self, input_graph_p_prime):
        assert input_graph_p_prime.is_connected()
        assert len(input_graph_p_prime.connected_components()) == 1

    def test_edges_of_figure_3_are_preserved(self, input_graph_p, input_graph_p_prime):
        old_edges = {frozenset(edge) for edge in input_graph_p.edges()}
        new_edges = {frozenset(edge) for edge in input_graph_p_prime.edges()}
        assert old_edges <= new_edges


class TestFigure5DecompositionOfPPrime:
    """Figure 5: the decomposing process duplicates car_number."""

    def test_duplicated_predicate_is_car_number(self, input_graph_p_prime):
        result = decompose(input_graph_p_prime, resolution=1.0)
        assert result.duplicated_predicates == frozenset({"car_number"})
        assert result.used_modularity

    def test_final_communities_match_figure_5(self, input_graph_p_prime):
        result = decompose(input_graph_p_prime, resolution=1.0)
        as_sets = {frozenset(community) for community in result.communities}
        assert as_sets == {
            frozenset({"average_speed", "traffic_light", "car_number"}),
            frozenset({"car_in_smoke", "car_speed", "car_location", "car_number"}),
        }

    def test_plan_routes_car_number_to_both_partitions(self, input_graph_p_prime):
        plan = decompose(input_graph_p_prime, resolution=1.0).plan
        assert len(plan.find_communities("car_number")) == 2
        assert len(plan.find_communities("average_speed")) == 1
        assert plan.duplicated_predicates == {"car_number"}


class TestExample2DecompositionOfP:
    """Example 2 / Section II-B: P's graph decomposes without duplication."""

    def test_two_partitions_no_duplicates(self, input_graph_p):
        result = decompose(input_graph_p)
        assert not result.used_modularity  # natural subdivision by components
        assert result.duplicated_predicates == frozenset()
        as_sets = {frozenset(community) for community in result.communities}
        assert as_sets == {
            frozenset({"average_speed", "car_number", "traffic_light"}),
            frozenset({"car_in_smoke", "car_speed", "car_location"}),
        }
