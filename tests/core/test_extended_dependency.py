"""Unit tests for the extended dependency graph (Definition 1)."""

from repro.asp.syntax.parser import parse_program
from repro.core.extended_dependency import ExtendedDependencyGraph


class TestConstruction:
    def test_nodes_are_all_predicates(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        assert graph.nodes == program_p.predicates()

    def test_body_body_edges_from_one_rule(self):
        program = parse_program("h(X) :- a(X), b(X), c(X).")
        graph = ExtendedDependencyGraph.from_program(program)
        assert graph.has_body_edge("a", "b")
        assert graph.has_body_edge("b", "c")
        assert graph.has_body_edge("a", "c")
        # E_P1 edges are undirected.
        assert graph.has_body_edge("c", "a")

    def test_single_body_literal_creates_no_body_edge(self):
        program = parse_program("h(X) :- a(X).")
        graph = ExtendedDependencyGraph.from_program(program)
        assert not graph.body_edge_pairs()

    def test_negative_literal_creates_self_loop(self):
        program = parse_program("h(X) :- a(X), not b(X).")
        graph = ExtendedDependencyGraph.from_program(program)
        assert graph.has_self_loop("b")
        assert not graph.has_self_loop("a")

    def test_directed_edges_body_to_head(self):
        program = parse_program("h(X) :- a(X), not b(X).")
        graph = ExtendedDependencyGraph.from_program(program)
        assert graph.has_head_edge("a", "h")
        assert graph.has_head_edge("b", "h")  # negative body literals count too
        assert not graph.has_head_edge("h", "a")

    def test_disjunctive_heads_all_get_edges(self):
        program = parse_program("h1(X) | h2(X) :- a(X).")
        graph = ExtendedDependencyGraph.from_program(program)
        assert graph.has_head_edge("a", "h1")
        assert graph.has_head_edge("a", "h2")


class TestViewsAndReachability:
    def test_directed_view_reachability(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        assert graph.reaches("average_speed", "give_notification")
        assert graph.reaches("car_in_smoke", "car_fire")
        assert not graph.reaches("give_notification", "average_speed")

    def test_reaches_is_reflexive(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        assert graph.reaches("traffic_light", "traffic_light")

    def test_undirected_view_contains_self_loops(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        undirected = graph.undirected_view()
        assert undirected.has_self_loop("traffic_light")

    def test_self_loops_listing(self, program_p):
        graph = ExtendedDependencyGraph.from_program(program_p)
        assert graph.self_loops() == {"traffic_light"}
