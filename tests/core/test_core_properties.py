"""Property-based tests for the partitioning and accuracy invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.accuracy import accuracy_of_answer, mean_accuracy
from repro.core.combining import combine_answer_sets
from repro.core.partitioner import DependencyPartitioner, RandomPartitioner
from repro.core.plan import PartitioningPlan
from repro.programs.traffic import INPUT_PREDICATES
from tests.conftest import make_atom


predicates = st.sampled_from(list(INPUT_PREDICATES))
entities = st.integers(min_value=0, max_value=30)


@st.composite
def windows(draw):
    items = draw(st.lists(st.tuples(predicates, entities, entities), max_size=60))
    return [make_atom(predicate, f"e{subject}", value) for predicate, subject, value in items]


@st.composite
def plans(draw):
    community_count = draw(st.integers(min_value=1, max_value=4))
    assignments = {}
    for predicate in INPUT_PREDICATES:
        communities = draw(
            st.sets(st.integers(0, community_count - 1), min_size=1, max_size=community_count)
        )
        assignments[predicate] = frozenset(communities)
    return PartitioningPlan(assignments=assignments, community_count=community_count)


@settings(max_examples=60, deadline=None)
@given(windows(), plans())
def test_dependency_partitioning_never_loses_an_item(window, plan):
    """Every window item appears in at least one partition (possibly several)."""
    partitions = DependencyPartitioner(plan).partition(window)
    merged = {str(atom) for partition in partitions for atom in partition}
    assert merged == {str(atom) for atom in window}


@settings(max_examples=60, deadline=None)
@given(windows(), plans())
def test_dependency_partitioning_copies_match_the_plan(window, plan):
    """An item is copied exactly into the communities its predicate maps to."""
    partitions = DependencyPartitioner(plan).partition(window)
    for atom in window:
        expected_communities = plan.find_communities(atom.predicate)
        actual_communities = {index for index, partition in enumerate(partitions) if atom in partition}
        assert actual_communities == set(expected_communities)


@settings(max_examples=60, deadline=None)
@given(windows(), st.integers(min_value=1, max_value=6), st.integers())
def test_random_partitioning_is_a_partition(window, k, seed):
    """Random chunking keeps every item exactly once overall."""
    partitions = RandomPartitioner(k, seed=seed).partition(window)
    assert len(partitions) == k
    total = [atom for partition in partitions for atom in partition]
    assert len(total) == len(window)
    assert sorted(map(str, total)) == sorted(map(str, window))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.lists(st.sets(st.sampled_from("abcdefgh"), max_size=4), max_size=3), max_size=3),
)
def test_combining_unions_are_supersets_of_each_choice(per_partition_names):
    per_partition = [
        [[make_atom(name) for name in answer] for answer in answers] for answers in per_partition_names
    ]
    combined = combine_answer_sets(per_partition, max_combinations=None)
    contributing = [answers for answers in per_partition if answers]
    if not contributing:
        assert combined == []
        return
    # Every combined answer contains at least one full answer set per partition.
    for union in combined:
        for answers in contributing:
            assert any(set(answer) <= set(union) for answer in answers)


@settings(max_examples=80, deadline=None)
@given(
    st.sets(st.sampled_from("abcdefghij"), max_size=8),
    st.lists(st.sets(st.sampled_from("abcdefghij"), max_size=8), min_size=1, max_size=4),
)
def test_accuracy_is_bounded_and_monotone_in_overlap(answer_names, reference_sets):
    answer = [make_atom(name) for name in answer_names]
    references = [[make_atom(name) for name in names] for names in reference_sets]
    value = accuracy_of_answer(answer, references)
    assert 0.0 <= value <= 1.0
    # Adding the full reference to the answer can only help.
    enriched = answer + references[0]
    assert accuracy_of_answer(enriched, references) >= value


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sets(st.sampled_from("abcde"), max_size=5), min_size=1, max_size=4))
def test_identical_answers_have_accuracy_one(reference_sets):
    references = [[make_atom(name) for name in names] for names in reference_sets]
    assert mean_accuracy(references, references) == 1.0
