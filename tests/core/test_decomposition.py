"""Unit tests for the decomposing (duplication) process."""


from repro.core.decomposition import decompose
from repro.core.input_dependency import InputDependencyGraph


def graph_from_edges(nodes, edges):
    graph = InputDependencyGraph(input_predicates=frozenset(nodes))
    graph.graph.add_nodes(nodes)
    for first, second in edges:
        graph.graph.add_edge(first, second)
    return graph


class TestDisconnectedGraphs:
    def test_components_become_partitions(self):
        graph = graph_from_edges(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        result = decompose(graph)
        assert result.community_count == 2
        assert not result.used_modularity
        assert result.duplicated_predicates == frozenset()

    def test_isolated_nodes_get_their_own_partition(self):
        graph = graph_from_edges(["a", "b", "x"], [("a", "b")])
        result = decompose(graph)
        assert result.community_count == 2
        assert frozenset({"x"}) in set(result.communities)

    def test_empty_graph(self):
        graph = graph_from_edges([], [])
        result = decompose(graph)
        assert result.community_count == 1
        assert result.plan.community_count == 1


class TestConnectedGraphs:
    def test_single_clique_stays_whole(self):
        graph = graph_from_edges(["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
        result = decompose(graph)
        assert result.community_count == 1
        assert result.duplicated_predicates == frozenset()

    def test_bridge_node_is_duplicated(self):
        # Two triangles joined through node "bridge".
        edges = [
            ("a1", "a2"), ("a2", "a3"), ("a1", "a3"),
            ("b1", "b2"), ("b2", "b3"), ("b1", "b3"),
            ("a1", "bridge"), ("bridge", "b1"),
        ]
        graph = graph_from_edges(["a1", "a2", "a3", "b1", "b2", "b3", "bridge"], edges)
        result = decompose(graph)
        assert result.used_modularity
        assert result.community_count == 2
        # The bridge endpoint(s) chosen for duplication appear in both communities.
        overlap = set(result.communities[0]) & set(result.communities[1])
        assert overlap == set(result.duplicated_predicates)
        assert overlap  # something was duplicated

    def test_duplicated_nodes_preserve_coverage(self, input_graph_p_prime):
        result = decompose(input_graph_p_prime)
        covered = set()
        for community in result.communities:
            covered.update(community)
        assert covered == set(input_graph_p_prime.nodes)

    def test_max_communities_cap(self):
        graph = graph_from_edges(["a", "b", "c", "d", "e", "f"], [("a", "b"), ("c", "d"), ("e", "f")])
        result = decompose(graph, max_communities=2)
        assert result.community_count == 2

    def test_unknown_policy_is_propagated(self, input_graph_p):
        plan = decompose(input_graph_p, unknown_policy="first").plan
        assert plan.find_communities("never_seen_predicate") == frozenset({0})


class TestResolutionParameter:
    def test_higher_resolution_never_reduces_community_count(self, input_graph_p_prime):
        low = decompose(input_graph_p_prime, resolution=0.5)
        high = decompose(input_graph_p_prime, resolution=4.0)
        assert high.community_count >= low.community_count

    def test_resolution_recorded_in_result(self, input_graph_p_prime):
        assert decompose(input_graph_p_prime, resolution=2.0).resolution == 2.0
