"""Unit tests for the non-monotonic accuracy metric."""

import pytest

from repro.core.accuracy import accuracy_of_answer, accuracy_of_answers, mean_accuracy
from tests.conftest import make_atom


def answer(*names):
    return [make_atom(name) for name in names]


class TestAccuracyOfAnswer:
    def test_perfect_match(self):
        assert accuracy_of_answer(answer("a", "b"), [answer("a", "b")]) == 1.0

    def test_partial_match(self):
        assert accuracy_of_answer(answer("a"), [answer("a", "b")]) == pytest.approx(0.5)

    def test_extra_atoms_do_not_reduce_accuracy(self):
        # The metric is recall-style: |ans_i ∩ ans_j| / |ans_j|.
        assert accuracy_of_answer(answer("a", "b", "c"), [answer("a", "b")]) == 1.0

    def test_max_over_reference_answers(self):
        value = accuracy_of_answer(answer("a", "x"), [answer("a", "b"), answer("a", "x", "y", "z")])
        # Against the first reference: 1/2; against the second: 2/4 -> max 0.5.
        assert value == pytest.approx(0.5)

    def test_picks_the_best_reference(self):
        value = accuracy_of_answer(answer("a", "b"), [answer("a", "b"), answer("c", "d", "e", "f")])
        assert value == 1.0

    def test_no_reference_answers_gives_zero(self):
        assert accuracy_of_answer(answer("a"), []) == 0.0

    def test_empty_reference_answer_is_perfectly_matched(self):
        assert accuracy_of_answer(answer("a"), [answer()]) == 1.0
        assert accuracy_of_answer(answer(), [answer()]) == 1.0

    def test_empty_answer_against_non_empty_reference(self):
        assert accuracy_of_answer(answer(), [answer("a", "b")]) == 0.0

    def test_single_answer_set_case_reduces_to_plain_ratio(self):
        # The paper's general definition before the non-monotonic adaptation.
        assert accuracy_of_answer(answer("a", "b", "c"), [answer("a", "b", "c", "d")]) == pytest.approx(0.75)


class TestAggregates:
    def test_accuracy_of_answers_per_answer(self):
        values = accuracy_of_answers([answer("a"), answer("b")], [answer("a", "b")])
        assert values == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_mean_accuracy(self):
        value = mean_accuracy([answer("a", "b"), answer("a")], [answer("a", "b")])
        assert value == pytest.approx(0.75)

    def test_mean_accuracy_of_no_answers_is_zero(self):
        assert mean_accuracy([], [answer("a")]) == 0.0
