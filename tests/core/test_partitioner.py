"""Unit tests for Algorithm 1 and the baseline partitioners."""

import pytest

from repro.core.partitioner import DependencyPartitioner, HashPartitioner, RandomPartitioner
from repro.core.plan import PartitioningPlan
from tests.conftest import make_atom


@pytest.fixture
def simple_plan():
    return PartitioningPlan.from_communities(
        [["average_speed", "car_number", "traffic_light"], ["car_in_smoke", "car_speed", "car_location"]]
    )


@pytest.fixture
def duplicating_plan():
    return PartitioningPlan.from_communities(
        [
            ["average_speed", "car_number", "traffic_light"],
            ["car_in_smoke", "car_speed", "car_location", "car_number"],
        ]
    )


@pytest.fixture
def example_window():
    return [
        make_atom("average_speed", "newcastle", 10),
        make_atom("car_number", "newcastle", 55),
        make_atom("traffic_light", "newcastle"),
        make_atom("car_in_smoke", "car1", "high"),
        make_atom("car_speed", "car1", 0),
        make_atom("car_location", "car1", "dangan"),
    ]


class TestDependencyPartitioner:
    def test_items_are_routed_by_predicate(self, simple_plan, example_window):
        partitions = DependencyPartitioner(simple_plan).partition(example_window)
        assert len(partitions) == 2
        left_predicates = {atom.predicate for atom in partitions[0]}
        right_predicates = {atom.predicate for atom in partitions[1]}
        assert left_predicates == {"average_speed", "car_number", "traffic_light"}
        assert right_predicates == {"car_in_smoke", "car_speed", "car_location"}

    def test_no_item_is_lost_or_duplicated_without_duplicates(self, simple_plan, example_window):
        partitions = DependencyPartitioner(simple_plan).partition(example_window)
        total = [atom for partition in partitions for atom in partition]
        assert sorted(total, key=str) == sorted(example_window, key=str)

    def test_duplicated_predicate_lands_in_both_partitions(self, duplicating_plan, example_window):
        partitions = DependencyPartitioner(duplicating_plan).partition(example_window)
        car_number_atom = make_atom("car_number", "newcastle", 55)
        assert car_number_atom in partitions[0]
        assert car_number_atom in partitions[1]

    def test_duplication_ratio(self, duplicating_plan, example_window):
        partitioner = DependencyPartitioner(duplicating_plan)
        ratio = partitioner.duplication_ratio(example_window)
        assert ratio == pytest.approx(1 / 6)

    def test_group_method(self, example_window):
        groups = DependencyPartitioner.group(example_window)
        assert set(groups) == {atom.predicate for atom in example_window}
        assert len(groups["average_speed"]) == 1

    def test_empty_window(self, simple_plan):
        partitions = DependencyPartitioner(simple_plan).partition([])
        assert partitions == [[], []]
        assert DependencyPartitioner(simple_plan).duplication_ratio([]) == 0.0

    def test_unknown_predicate_broadcasts_by_default(self, simple_plan):
        unknown = make_atom("pressure", "p1", 7)
        partitions = DependencyPartitioner(simple_plan).partition([unknown])
        assert unknown in partitions[0] and unknown in partitions[1]

    def test_partition_count_property(self, simple_plan):
        assert DependencyPartitioner(simple_plan).partition_count == 2


class TestRandomPartitioner:
    def test_every_item_lands_in_exactly_one_partition(self, example_window):
        partitions = RandomPartitioner(3, seed=1).partition(example_window)
        total = [atom for partition in partitions for atom in partition]
        assert sorted(total, key=str) == sorted(example_window, key=str)
        assert len(partitions) == 3

    def test_seed_reproducibility(self, example_window):
        first = RandomPartitioner(3, seed=42).partition(example_window)
        second = RandomPartitioner(3, seed=42).partition(example_window)
        assert first == second

    def test_different_seeds_usually_differ(self):
        window = [make_atom("p", index) for index in range(50)]
        first = RandomPartitioner(2, seed=1).partition(window)
        second = RandomPartitioner(2, seed=2).partition(window)
        assert first != second

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            RandomPartitioner(0)

    def test_partition_count_property(self):
        assert RandomPartitioner(5).partition_count == 5

    def test_roughly_uniform_distribution(self):
        window = [make_atom("p", index) for index in range(2000)]
        partitions = RandomPartitioner(4, seed=7).partition(window)
        sizes = [len(partition) for partition in partitions]
        assert sum(sizes) == 2000
        assert min(sizes) > 350  # loose uniformity bound


class TestHashPartitioner:
    def test_deterministic_without_seed(self, example_window):
        assert HashPartitioner(3).partition(example_window) == HashPartitioner(3).partition(example_window)

    def test_every_item_lands_in_exactly_one_partition(self, example_window):
        partitions = HashPartitioner(2).partition(example_window)
        total = [atom for partition in partitions for atom in partition]
        assert sorted(total, key=str) == sorted(example_window, key=str)

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
