"""Unit tests for the partitioning plan."""

import pytest

from repro.core.plan import PartitioningPlan


class TestConstruction:
    def test_from_communities(self):
        plan = PartitioningPlan.from_communities([["a", "b"], ["c"]])
        assert plan.community_count == 2
        assert plan.find_communities("a") == frozenset({0})
        assert plan.find_communities("c") == frozenset({1})

    def test_duplicated_predicates(self):
        plan = PartitioningPlan.from_communities([["a", "dup"], ["b", "dup"]])
        assert plan.duplicated_predicates == {"dup"}
        assert plan.find_communities("dup") == frozenset({0, 1})

    def test_single_partition_helper(self):
        plan = PartitioningPlan.single_partition(["a", "b"])
        assert plan.community_count == 1
        assert plan.find_communities("a") == frozenset({0})

    def test_invalid_unknown_policy(self):
        with pytest.raises(ValueError):
            PartitioningPlan(assignments={"a": frozenset({0})}, community_count=1, unknown_policy="drop")

    def test_out_of_range_community_rejected(self):
        with pytest.raises(ValueError):
            PartitioningPlan(assignments={"a": frozenset({3})}, community_count=2)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            PartitioningPlan(assignments={"a": frozenset()}, community_count=1)

    def test_zero_communities_rejected(self):
        with pytest.raises(ValueError):
            PartitioningPlan(assignments={}, community_count=0)


class TestLookups:
    def test_unknown_predicate_broadcast_policy(self):
        plan = PartitioningPlan.from_communities([["a"], ["b"]], unknown_policy="broadcast")
        assert plan.find_communities("zzz") == frozenset({0, 1})

    def test_unknown_predicate_first_policy(self):
        plan = PartitioningPlan.from_communities([["a"], ["b"]], unknown_policy="first")
        assert plan.find_communities("zzz") == frozenset({0})

    def test_community_members(self):
        plan = PartitioningPlan.from_communities([["a", "dup"], ["b", "dup"]])
        assert plan.community_members(0) == {"a", "dup"}
        assert plan.community_members(1) == {"b", "dup"}

    def test_communities_round_trip(self):
        groups = [["a", "dup"], ["b", "dup"]]
        plan = PartitioningPlan.from_communities(groups)
        assert [sorted(c) for c in plan.communities()] == [sorted(g) for g in groups]

    def test_len_and_predicates(self):
        plan = PartitioningPlan.from_communities([["a"], ["b"]])
        assert len(plan) == 2
        assert plan.predicates == {"a", "b"}

    def test_describe_mentions_duplicates(self):
        plan = PartitioningPlan.from_communities([["a", "dup"], ["b", "dup"]])
        description = plan.describe()
        assert "duplicated predicates: dup" in description
        assert "community 0" in description
