"""Unit tests for the stream query processor (CQELS stand-in)."""

from repro.programs.traffic import INPUT_PREDICATES
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple


class TestFiltering:
    def test_keeps_only_registered_predicates(self):
        processor = StreamQueryProcessor(input_predicates={"average_speed"})
        kept = processor.process([
            Triple("a", "average_speed", 10),
            Triple("a", "humidity", 80),
        ])
        assert [triple.predicate for triple in kept] == ["average_speed"]

    def test_statistics(self):
        processor = StreamQueryProcessor(input_predicates={"average_speed"})
        processor.process([Triple("a", "average_speed", 10), Triple("a", "noise", 1), Triple("b", "noise", 2)])
        assert processor.accepted_count == 1
        assert processor.rejected_count == 2
        assert processor.selectivity == 1 / 3

    def test_selectivity_with_no_input(self):
        assert StreamQueryProcessor(input_predicates=set()).selectivity == 0.0

    def test_extra_predicate_filter(self):
        processor = StreamQueryProcessor(input_predicates={"average_speed"})
        processor.register_filter("average_speed", lambda triple: triple.object < 50)
        kept = processor.process([Triple("a", "average_speed", 10), Triple("b", "average_speed", 90)])
        assert [triple.subject for triple in kept] == ["a"]

    def test_lazy_stream_filtering(self):
        processor = StreamQueryProcessor(input_predicates=set(INPUT_PREDICATES))
        source = iter([Triple("a", "average_speed", 10), Triple("a", "other", 1)])
        assert [triple.predicate for triple in processor.stream(source)] == ["average_speed"]

    def test_accepts_full_traffic_vocabulary(self):
        processor = StreamQueryProcessor(input_predicates=set(INPUT_PREDICATES))
        assert all(
            processor.accepts(Triple("x", predicate, 1)) for predicate in INPUT_PREDICATES
        )
