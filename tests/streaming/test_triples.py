"""Unit tests for the RDF triple model."""

import pytest

from repro.streaming.triples import Triple


class TestTriple:
    def test_construction_and_fields(self):
        triple = Triple("newcastle", "average_speed", 10)
        assert triple.subject == "newcastle"
        assert triple.predicate == "average_speed"
        assert triple.object == 10
        assert triple.timestamp is None

    def test_as_tuple(self):
        assert Triple("s", "p", "o").as_tuple() == ("s", "p", "o")

    def test_with_timestamp(self):
        triple = Triple("s", "p", "o").with_timestamp(3.5)
        assert triple.timestamp == 3.5
        # Original is unchanged (immutability).
        assert Triple("s", "p", "o").timestamp is None

    def test_str_rendering(self):
        assert str(Triple("car1", "car_speed", 0)) == "<car1, car_speed, 0>"

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Triple("s", "", "o")

    def test_hashable_and_equal(self):
        assert Triple("s", "p", 1) == Triple("s", "p", 1)
        assert len({Triple("s", "p", 1), Triple("s", "p", 1)}) == 1
