"""Unit tests for windowing policies."""

import pytest

from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, TimeWindow, WindowedStream


def triples(count, step=1.0):
    return [Triple(f"s{i}", "p", i, timestamp=i * step) for i in range(count)]


class TestCountWindow:
    def test_tumbling_windows(self):
        windows = list(CountWindow(size=3).windows(triples(7)))
        assert [len(window) for window in windows] == [3, 3, 1]

    def test_exact_multiple_has_no_trailing_window(self):
        windows = list(CountWindow(size=3).windows(triples(6)))
        assert [len(window) for window in windows] == [3, 3]

    def test_sliding_windows_overlap(self):
        windows = list(CountWindow(size=3, slide=1).windows(triples(5)))
        assert windows[0][0].subject == "s0"
        assert windows[1][0].subject == "s1"
        assert all(len(window) <= 3 for window in windows)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountWindow(size=0)
        with pytest.raises(ValueError):
            CountWindow(size=3, slide=0)

    def test_empty_stream(self):
        assert list(CountWindow(size=3).windows([])) == []


class TestTimeWindow:
    def test_windows_by_duration(self):
        windows = list(TimeWindow(duration=3.0).windows(triples(9)))
        assert [len(window) for window in windows] == [3, 3, 3]

    def test_sliding_time_window(self):
        windows = list(TimeWindow(duration=4.0, slide=2.0).windows(triples(8)))
        assert len(windows) >= 3
        assert all(window for window in windows)

    def test_missing_timestamps_are_tolerated(self):
        data = [Triple("a", "p", 1), Triple("b", "p", 2)]
        windows = list(TimeWindow(duration=10.0).windows(data))
        assert sum(len(window) for window in windows) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimeWindow(duration=0)
        with pytest.raises(ValueError):
            TimeWindow(duration=1.0, slide=0)

    def test_empty_stream(self):
        assert list(TimeWindow(duration=5.0).windows([])) == []


class TestWindowedStream:
    def test_iterates_windows(self):
        stream = WindowedStream(triples(6), CountWindow(size=2))
        assert [len(window) for window in stream] == [2, 2, 2]
