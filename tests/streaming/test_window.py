"""Unit tests for windowing policies."""

import pytest

from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, TimeWindow, WindowedStream


def triples(count, step=1.0):
    return [Triple(f"s{i}", "p", i, timestamp=i * step) for i in range(count)]


def objects(window):
    return [triple.object for triple in window]


class TestCountWindow:
    def test_tumbling_windows(self):
        windows = list(CountWindow(size=3).windows(triples(7)))
        assert [len(window) for window in windows] == [3, 3, 1]

    def test_exact_multiple_has_no_trailing_window(self):
        windows = list(CountWindow(size=3).windows(triples(6)))
        assert [len(window) for window in windows] == [3, 3]

    def test_sliding_windows_overlap(self):
        windows = list(CountWindow(size=3, slide=1).windows(triples(5)))
        assert windows[0][0].subject == "s0"
        assert windows[1][0].subject == "s1"
        assert all(len(window) <= 3 for window in windows)

    def test_sliding_windows_no_duplicate_tail(self):
        # The last full window is [2,3,4]; the leftover buffer [3,4] is a
        # pure suffix of it and must not be re-emitted as a partial window.
        windows = list(CountWindow(size=3, slide=1).windows(triples(5)))
        assert [objects(window) for window in windows] == [[0, 1, 2], [1, 2, 3], [2, 3, 4]]

    def test_sliding_partial_with_new_content_is_emitted(self):
        # After the last full window [0,1,2] the stream still delivers item 3:
        # the trailing partial [1,2,3] carries unseen content and is emitted.
        windows = list(CountWindow(size=3, slide=2).windows(triples(4)))
        assert [objects(window) for window in windows] == [[0, 1, 2], [2, 3]]

    def test_hopping_windows_skip_items(self):
        # size=2, slide=3: one item is skipped between consecutive windows.
        windows = list(CountWindow(size=2, slide=3).windows(triples(8)))
        assert [objects(window) for window in windows] == [[0, 1], [3, 4], [6, 7]]

    def test_hopping_trailing_partial(self):
        windows = list(CountWindow(size=2, slide=3).windows(triples(7)))
        assert [objects(window) for window in windows] == [[0, 1], [3, 4], [6]]

    def test_emit_partial_false_suppresses_trailing_window(self):
        windows = list(CountWindow(size=3, emit_partial=False).windows(triples(7)))
        assert [objects(window) for window in windows] == [[0, 1, 2], [3, 4, 5]]

    def test_short_stream_partial(self):
        windows = list(CountWindow(size=5).windows(triples(2)))
        assert [objects(window) for window in windows] == [[0, 1]]
        assert list(CountWindow(size=5, emit_partial=False).windows(triples(2))) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountWindow(size=0)
        with pytest.raises(ValueError):
            CountWindow(size=3, slide=0)

    def test_empty_stream(self):
        assert list(CountWindow(size=3).windows([])) == []


class TestCountWindowDeltas:
    def test_first_window_is_all_arrived(self):
        [delta] = CountWindow(size=3).deltas(triples(3))
        assert delta.index == 0
        assert delta.expired == ()
        assert delta.arrived == delta.window
        assert not delta.carries_over

    def test_sliding_deltas_reconstruct_windows(self):
        deltas = list(CountWindow(size=3, slide=1).deltas(triples(6)))
        for previous, current in zip(deltas, deltas[1:]):
            reconstructed = previous.window[len(current.expired) :] + current.arrived
            assert reconstructed == current.window
            assert current.carries_over

    def test_hopping_deltas_expire_everything(self):
        deltas = list(CountWindow(size=2, slide=3).deltas(triples(8)))
        assert [objects(delta.window) for delta in deltas] == [[0, 1], [3, 4], [6, 7]]
        assert all(delta.arrived == delta.window for delta in deltas)
        assert objects(deltas[1].expired) == [0, 1]
        assert not deltas[1].carries_over

    def test_partial_delta_flagged(self):
        deltas = list(CountWindow(size=3).deltas(triples(7)))
        assert [delta.partial for delta in deltas] == [False, False, True]
        assert objects(deltas[-1].arrived) == [6]


class TestTimeWindow:
    def test_windows_by_duration(self):
        windows = list(TimeWindow(duration=3.0).windows(triples(9)))
        assert [len(window) for window in windows] == [3, 3, 3]

    def test_sliding_time_window(self):
        windows = list(TimeWindow(duration=4.0, slide=2.0).windows(triples(8)))
        assert len(windows) >= 3
        assert all(window for window in windows)

    def test_missing_timestamps_are_tolerated(self):
        data = [Triple("a", "p", 1), Triple("b", "p", 2)]
        windows = list(TimeWindow(duration=10.0).windows(data))
        assert sum(len(window) for window in windows) == 2

    def test_missing_timestamp_not_duplicated_into_overlapping_windows(self):
        # "b" inherits the preceding timestamp (0.0): it must appear exactly
        # once per window *covering t=0*, not in every overlapping window.
        data = [Triple("a", "p", 1, timestamp=0.0), Triple("b", "p", 2), Triple("c", "p", 3, timestamp=3.0)]
        windows = list(TimeWindow(duration=2.0, slide=1.0).windows(data))
        occurrences = sum(1 for window in windows for triple in window if triple.subject == "b")
        assert occurrences == 1

    def test_missing_timestamp_inherits_previous(self):
        data = [
            Triple("a", "p", 1, timestamp=0.0),
            Triple("b", "p", 2, timestamp=5.0),
            Triple("c", "p", 3),  # effectively t=5.0
        ]
        windows = list(TimeWindow(duration=2.0).windows(data))
        assert [sorted(t.subject for t in window) for window in windows] == [["a"], ["b", "c"]]

    def test_sliding_deltas_reconstruct_windows(self):
        deltas = list(TimeWindow(duration=4.0, slide=2.0).deltas(triples(10)))
        assert len(deltas) >= 3
        for previous, current in zip(deltas, deltas[1:]):
            reconstructed = previous.window[len(current.expired) :] + current.arrived
            assert reconstructed == current.window

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimeWindow(duration=0)
        with pytest.raises(ValueError):
            TimeWindow(duration=1.0, slide=0)

    def test_empty_stream(self):
        assert list(TimeWindow(duration=5.0).windows([])) == []


class TestWindowedStream:
    def test_iterates_windows(self):
        stream = WindowedStream(triples(6), CountWindow(size=2))
        assert [len(window) for window in stream] == [2, 2, 2]

    def test_deltas_passthrough(self):
        stream = WindowedStream(triples(6), CountWindow(size=2, slide=1))
        deltas = list(stream.deltas())
        assert [delta.index for delta in deltas] == list(range(len(deltas)))
