"""Unit tests for the synthetic stream generators."""

import pytest

from repro.programs.traffic import INPUT_PREDICATES
from repro.streaming.generator import (
    SyntheticStreamConfig,
    TrafficScenarioGenerator,
    UniformTripleGenerator,
    generate_window,
)


def config(**overrides):
    defaults = dict(window_size=200, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=11)
    defaults.update(overrides)
    return SyntheticStreamConfig(**defaults)


class TestConfigValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            config(window_size=-1)

    def test_empty_predicates_rejected(self):
        with pytest.raises(ValueError):
            config(input_predicates=())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            config(scheme="weird")


class TestUniformGenerator:
    def test_window_size_respected(self):
        triples = UniformTripleGenerator(config(scheme="uniform", window_size=123)).generate()
        assert len(triples) == 123

    def test_predicates_come_from_inpre(self):
        triples = UniformTripleGenerator(config(scheme="uniform")).generate()
        assert {triple.predicate for triple in triples} <= set(INPUT_PREDICATES)

    def test_values_bounded_by_window_size(self):
        triples = UniformTripleGenerator(config(scheme="uniform", window_size=50)).generate()
        assert all(0 <= triple.subject < 50 and 0 <= triple.object < 50 for triple in triples)

    def test_custom_value_bound(self):
        triples = UniformTripleGenerator(config(scheme="uniform", value_bound=5)).generate()
        assert all(0 <= triple.object < 5 for triple in triples)

    def test_seed_reproducibility(self):
        first = UniformTripleGenerator(config(scheme="uniform")).generate()
        second = UniformTripleGenerator(config(scheme="uniform")).generate()
        assert first == second


class TestTrafficGenerator:
    def test_window_size_respected(self):
        assert len(TrafficScenarioGenerator(config()).generate()) == 200

    def test_predicate_specific_value_shapes(self):
        triples = TrafficScenarioGenerator(config(window_size=2000)).generate()
        speeds = [t.object for t in triples if t.predicate == "average_speed"]
        counts = [t.object for t in triples if t.predicate == "car_number"]
        smoke = {t.object for t in triples if t.predicate == "car_in_smoke"}
        lights = {t.object for t in triples if t.predicate == "traffic_light"}
        assert speeds and all(0 <= value < 120 for value in speeds)
        assert counts and all(0 <= value < 100 for value in counts)
        assert smoke <= {"high", "low"}
        assert lights == {"true"}

    def test_rules_can_fire_on_generated_data(self):
        # Enough slow readings and crowded readings to make events plausible.
        triples = TrafficScenarioGenerator(config(window_size=3000)).generate()
        slow = [t for t in triples if t.predicate == "average_speed" and t.object < 20]
        crowded = [t for t in triples if t.predicate == "car_number" and t.object > 40]
        assert slow and crowded

    def test_subjects_drawn_from_entity_pools(self):
        triples = TrafficScenarioGenerator(config(location_count=5, car_count=3)).generate()
        segments = {t.subject for t in triples if t.predicate == "average_speed"}
        cars = {t.subject for t in triples if t.predicate == "car_speed"}
        assert segments <= {f"seg_{i}" for i in range(5)}
        assert cars <= {f"car_{i}" for i in range(3)}

    def test_unknown_predicate_falls_back_to_uniform(self):
        custom = config(input_predicates=INPUT_PREDICATES + ("pressure",), window_size=500)
        triples = TrafficScenarioGenerator(custom).generate()
        assert any(triple.predicate == "pressure" for triple in triples)

    def test_seed_reproducibility(self):
        assert TrafficScenarioGenerator(config()).generate() == TrafficScenarioGenerator(config()).generate()


class TestGenerateWindow:
    def test_dispatch_by_scheme(self):
        assert len(generate_window(config(scheme="uniform", window_size=10))) == 10
        assert len(generate_window(config(scheme="traffic", window_size=10))) == 10

    def test_timestamps_are_monotone(self):
        triples = generate_window(config(window_size=50))
        timestamps = [triple.timestamp for triple in triples]
        assert timestamps == sorted(timestamps)
