"""Property tests for window-coverage invariants.

The reference semantics of a count window with parameters ``(size, slide)``
over a stream ``s`` is the slice family ``s[j*slide : j*slide + size]`` for
``j = 0, 1, ...`` -- full windows only, plus (under ``emit_partial``) one
trailing partial window when leftover items never appeared in a full window.
The properties below pin :class:`CountWindow` to that specification and
derive the classic coverage corollaries:

* every *interior* item of a sliding stream appears in exactly
  ``ceil(size / slide)`` full windows,
* hopping windows honour their gaps (skipped items appear in no window),
* the delta API's expired+arrived records reconstruct each window exactly.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, TimeWindow


def stream_of(length):
    return [Triple(f"s{i}", "p", i, timestamp=float(i)) for i in range(length)]


def reference_windows(items, size, slide):
    """The specification: full windows are contiguous slices at multiples of slide."""
    full = []
    position = 0
    while position + size <= len(items):
        full.append(items[position : position + size])
        position += slide
    return full, position


window_parameters = st.tuples(
    st.integers(min_value=1, max_value=12),  # size
    st.integers(min_value=1, max_value=15),  # slide
    st.integers(min_value=0, max_value=60),  # stream length
)


class TestCountWindowSpecification:
    @given(window_parameters)
    @settings(max_examples=200, deadline=None)
    def test_windows_match_reference_slices(self, parameters):
        size, slide, length = parameters
        items = stream_of(length)
        expected, resume_position = reference_windows(items, size, slide)
        emitted = list(CountWindow(size=size, slide=slide).windows(items))
        full_emitted = [window for window in emitted if len(window) == size]
        # Every full window is exactly the reference slice.
        assert full_emitted[: len(expected)] == expected
        # A trailing partial (full_emitted may contain a size-length partial
        # only when the leftover happens to have `size` items -- impossible:
        # a size-length buffer is always emitted as a full window).
        extras = emitted[len(expected) :]
        assert len(extras) <= 1
        if extras:
            # The partial must contain at least one item no full window had.
            covered = {triple.object for window in expected for triple in window}
            assert any(triple.object not in covered for triple in extras[0])

    @given(window_parameters)
    @settings(max_examples=200, deadline=None)
    def test_interior_items_appear_in_ceil_size_over_slide_windows(self, parameters):
        size, slide, length = parameters
        items = stream_of(length)
        full, _ = reference_windows(items, size, slide)
        emitted = [w for w in CountWindow(size=size, slide=slide, emit_partial=False).windows(items)]
        assert emitted == full
        if slide > size or not full:
            return
        counts = {}
        for window in emitted:
            for triple in window:
                counts[triple.object] = counts.get(triple.object, 0) + 1
        # Interior items: covered by the first window's last item onwards and
        # ending before the last window's first item (edge items appear fewer
        # times as the stream ramps up / drains).  When slide divides size,
        # every interior item appears in exactly size/slide = ceil(size/slide)
        # windows; otherwise coverage alternates between floor and ceil.
        first_full_coverage = size - 1
        last_window_start = (len(emitted) - 1) * slide
        for position in range(first_full_coverage, last_window_start):
            count = counts.get(position, 0)
            if size % slide == 0:
                assert count == size // slide, position
            else:
                assert math.floor(size / slide) <= count <= math.ceil(size / slide), position

    @given(window_parameters)
    @settings(max_examples=200, deadline=None)
    def test_hopping_gaps_are_honored(self, parameters):
        size, slide, length = parameters
        if slide <= size:
            slide = size + slide  # force a hopping configuration
        items = stream_of(length)
        emitted = list(CountWindow(size=size, slide=slide).windows(items))
        seen = {triple.object for window in emitted for triple in window}
        for position in range(length):
            cycle_offset = position % slide
            in_gap = cycle_offset >= size
            if in_gap:
                assert position not in seen, position


class TestDeltaReconstruction:
    @given(window_parameters)
    @settings(max_examples=200, deadline=None)
    def test_count_deltas_reconstruct_every_window(self, parameters):
        size, slide, length = parameters
        items = stream_of(length)
        deltas = list(CountWindow(size=size, slide=slide).deltas(items))
        previous = ()
        for delta in deltas:
            # expired is a prefix of the previous window, arrived a suffix of
            # the current one, and together they reconstruct the slide.
            assert previous[: len(delta.expired)] == delta.expired
            assert delta.window[len(delta.window) - len(delta.arrived) :] == delta.arrived
            assert previous[len(delta.expired) :] + delta.arrived == delta.window
            previous = delta.window
        # The deltas agree with the plain window iteration.
        assert [list(d.window) for d in deltas] == list(CountWindow(size=size, slide=slide).windows(items))

    @given(
        st.integers(min_value=1, max_value=8),  # duration
        st.integers(min_value=1, max_value=10),  # slide
        st.integers(min_value=0, max_value=40),  # stream length
    )
    @settings(max_examples=200, deadline=None)
    def test_time_deltas_reconstruct_every_window(self, duration, slide, length):
        items = stream_of(length)
        policy = TimeWindow(duration=float(duration), slide=float(slide))
        deltas = list(policy.deltas(items))
        previous = ()
        for delta in deltas:
            assert previous[: len(delta.expired)] == delta.expired
            assert previous[len(delta.expired) :] + delta.arrived == delta.window
            previous = delta.window
        assert [list(d.window) for d in deltas] == list(policy.windows(items))

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_time_window_coverage(self, duration, slide, length):
        """Each triple appears in exactly the emitted windows covering its timestamp."""
        items = stream_of(length)
        policy = TimeWindow(duration=float(duration), slide=float(slide))
        emitted = list(policy.windows(items))
        if not items:
            assert emitted == []
            return
        start = items[0].timestamp
        counts = {}
        for window in emitted:
            for triple in window:
                counts[triple.object] = counts.get(triple.object, 0) + 1
        end_time = items[-1].timestamp + 1e-9
        for triple in items:
            covering = 0
            window_start = start
            while window_start <= end_time:
                if window_start <= triple.timestamp < window_start + duration:
                    covering += 1
                window_start += slide
            assert counts.get(triple.object, 0) == covering, triple.object


class TestCountWindowStepper:
    @given(window_parameters, st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_stepper_matches_batch_deltas(self, parameters, emit_partial):
        """Feeding items one at a time yields the exact delta sequence of deltas()."""
        size, slide, length = parameters
        items = stream_of(length)
        policy = CountWindow(size=size, slide=slide, emit_partial=emit_partial)
        expected = list(policy.deltas(items))

        stepper = policy.stepper()
        stepped = [delta for item in items if (delta := stepper.feed(item)) is not None]
        tail = stepper.flush()
        if tail is not None:
            stepped.append(tail)
        assert stepped == expected

    def test_flush_is_idempotent(self):
        policy = CountWindow(size=4, slide=4)
        stepper = policy.stepper()
        for item in stream_of(6):
            stepper.feed(item)
        assert stepper.flush() is not None  # the 2-item tail
        assert stepper.flush() is None  # already emitted
