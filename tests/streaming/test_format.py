"""Unit tests for the RDF <-> ASP data format processor."""

import pytest

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant
from repro.streaming.format import DataFormatProcessor
from repro.streaming.triples import Triple
from tests.conftest import make_atom


class TestTriplesToAtoms:
    def test_binary_triple(self):
        processor = DataFormatProcessor()
        atom = processor.triple_to_atom(Triple("newcastle", "average_speed", 10))
        assert atom == make_atom("average_speed", "newcastle", 10)

    def test_unary_marker_triple(self):
        processor = DataFormatProcessor()
        atom = processor.triple_to_atom(Triple("newcastle", "traffic_light", "true"))
        assert atom == make_atom("traffic_light", "newcastle")

    def test_custom_unary_marker(self):
        processor = DataFormatProcessor(unary_marker="yes")
        atom = processor.triple_to_atom(Triple("newcastle", "traffic_light", "yes"))
        assert atom.arity == 1

    def test_batch_translation(self):
        processor = DataFormatProcessor()
        atoms = processor.triples_to_atoms([Triple("a", "p", 1), Triple("b", "q", 2)])
        assert len(atoms) == 2
        assert all(isinstance(atom, Atom) for atom in atoms)

    def test_integer_subject_is_preserved(self):
        processor = DataFormatProcessor()
        atom = processor.triple_to_atom(Triple(7, "p", 8))
        assert atom.arguments == (Constant(7), Constant(8))


class TestAtomsToTriples:
    def test_binary_atom_round_trip(self):
        processor = DataFormatProcessor()
        original = Triple("newcastle", "average_speed", 10)
        assert processor.atom_to_triple(processor.triple_to_atom(original)).as_tuple() == original.as_tuple()

    def test_unary_atom_round_trip(self):
        processor = DataFormatProcessor()
        original = Triple("newcastle", "traffic_light", "true")
        assert processor.atom_to_triple(processor.triple_to_atom(original)).as_tuple() == original.as_tuple()

    def test_timestamp_is_attached(self):
        processor = DataFormatProcessor()
        triple = processor.atom_to_triple(make_atom("traffic_jam", "dangan"), timestamp=12.0)
        assert triple.timestamp == 12.0

    def test_higher_arity_rejected(self):
        processor = DataFormatProcessor()
        with pytest.raises(ValueError):
            processor.atom_to_triple(make_atom("p", 1, 2, 3))

    def test_batch_translation(self):
        processor = DataFormatProcessor()
        triples = processor.atoms_to_triples([make_atom("traffic_jam", "dangan"), make_atom("p", "a", "b")])
        assert len(triples) == 2
