"""TimeWindowStepper: push-based time windowing equals the batch path.

The contract (mirroring ``CountWindowStepper``): for any stream the
stepper accepts, feeding item-wise and flushing yields exactly the delta
sequence of :meth:`TimeWindow.deltas` -- which itself now *drives* the
stepper after sorting, so these tests pin the push-specific behaviour:
in-order exactness, the tolerated-disorder envelope, and the late-arrival
gate that protects already-evaluated windows.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.triples import Triple
from repro.streaming.window import LateArrivalError, TimeWindow


def stamped(values):
    return [Triple(f"s{i}", "p", i, timestamp=stamp) for i, stamp in enumerate(values)]


def feed_all(stepper, triples):
    deltas = []
    for triple in triples:
        deltas.extend(stepper.feed(triple))
    deltas.extend(stepper.flush())
    return deltas


class TestInOrderEquivalence:
    @given(
        stamps=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=0, max_size=60),
        duration=st.floats(min_value=0.5, max_value=20.0),
        slide=st.one_of(st.none(), st.floats(min_value=0.5, max_value=25.0)),
    )
    @settings(max_examples=150, deadline=None)
    def test_push_equals_batch_for_sorted_streams(self, stamps, duration, slide):
        stream = stamped(sorted(stamps))
        policy = TimeWindow(duration=duration, slide=slide)
        batch = list(policy.deltas(stream))
        pushed = feed_all(policy.stepper(), stream)
        assert pushed == batch

    @given(
        stamps=st.lists(st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=1, max_size=40),
        none_positions=st.sets(st.integers(min_value=0, max_value=39)),
    )
    @settings(max_examples=100, deadline=None)
    def test_timestampless_items_inherit_like_the_batch_path(self, stamps, none_positions):
        triples = []
        for index, stamp in enumerate(sorted(stamps)):
            effective = None if index in none_positions else stamp
            triples.append(Triple(f"s{index}", "p", index, timestamp=effective))
        policy = TimeWindow(duration=7.0, slide=3.0)
        batch = list(policy.deltas(triples))
        pushed = feed_all(policy.stepper(), triples)
        assert pushed == batch

    def test_fully_timestampless_stream_defaults_to_zero(self):
        triples = [Triple(f"s{i}", "p", i) for i in range(5)]
        policy = TimeWindow(duration=10.0)
        batch = list(policy.deltas(triples))
        pushed = feed_all(policy.stepper(), triples)
        assert pushed == batch
        assert len(pushed) == 1 and len(pushed[0].window) == 5

    def test_window_invariant_holds_per_slide(self):
        stream = stamped([0, 1, 2, 5, 6, 9, 12, 13, 17, 21])
        policy = TimeWindow(duration=8.0, slide=4.0)
        previous = None
        for delta in feed_all(policy.stepper(), stream):
            if previous is not None:
                assert previous[len(delta.expired):] + list(delta.arrived) == list(delta.window)
            previous = list(delta.window)


class TestToleratedDisorder:
    def test_disorder_before_first_emission_shifts_the_grid(self):
        # 10 then 7: no window closed yet, so the grid starts at 7 -- the
        # batch path would sort and do the same.
        stream = stamped([10.0, 7.0, 8.0, 25.0])
        policy = TimeWindow(duration=10.0)
        batch = list(policy.deltas(sorted(stream, key=lambda t: t.timestamp)))
        pushed = feed_all(policy.stepper(), stream)
        assert pushed == batch
        assert [len(d.window) for d in pushed] == [3, 1]

    def test_disorder_within_open_windows_is_exact(self):
        # Window [0, 10) closes at stamp 11; 12 then 11 back-fills an open
        # region only.
        stream = stamped([0.0, 3.0, 12.0, 11.0, 22.0])
        policy = TimeWindow(duration=10.0)
        pushed = feed_all(policy.stepper(), stream)
        assert [sorted(t.timestamp for t in d.window) for d in pushed] == [[0.0, 3.0], [11.0, 12.0], [22.0]]


class TestLateArrivals:
    def test_late_item_raises_by_default(self):
        policy = TimeWindow(duration=10.0)
        stepper = policy.stepper()
        feed_list = stamped([0.0, 15.0])  # stamp 15 closes [0, 10)
        for triple in feed_list:
            stepper.feed(triple)
        with pytest.raises(LateArrivalError):
            stepper.feed(Triple("late", "p", 1, timestamp=5.0))

    def test_drop_policy_counts_and_continues(self):
        policy = TimeWindow(duration=10.0)
        stepper = policy.stepper(late="drop")
        for triple in stamped([0.0, 15.0]):
            stepper.feed(triple)
        assert stepper.feed(Triple("late", "p", 1, timestamp=5.0)) == []
        assert stepper.late_dropped == 1
        deltas = stepper.flush()
        assert all("late" not in {t.subject for t in d.window} for d in deltas)

    def test_boundary_stamp_is_not_late(self):
        policy = TimeWindow(duration=10.0)
        stepper = policy.stepper()
        for triple in stamped([0.0, 15.0]):
            stepper.feed(triple)
        # Stamp 10.0 == closed end: belongs only to still-open windows.
        assert stepper.feed(Triple("edge", "p", 1, timestamp=10.0)) == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(duration=1.0).stepper(late="ignore")


class TestSessionEagerMode:
    def test_eager_push_equals_deferred_push(self):
        from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
        from repro.streaming.generator import SyntheticStreamConfig, generate_window
        from repro.streamrule.session import StreamSession

        stream = generate_window(
            SyntheticStreamConfig(
                window_size=120, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=11
            )
        )
        window = TimeWindow(duration=40.0, slide=20.0)

        def run(eager):
            with StreamSession(
                traffic_program(),
                input_predicates=INPUT_PREDICATES,
                output_predicates=EVENT_PREDICATES,
                window=window,
                eager_time_windows=eager,
            ) as session:
                pushed = session.push(stream)
                session.finish()
                solutions = [(s.window_index, set(s.answers)) for s in session.results()]
                return pushed, solutions

        deferred_pushed, deferred = run(False)
        eager_pushed, eager = run(True)
        assert deferred == eager
        assert deferred_pushed == 0  # deferred mode stages everything
        assert eager_pushed > 0  # eager mode streams results before finish
