"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant
from repro.core.decomposition import decompose
from repro.core.input_dependency import build_input_dependency_graph
from repro.programs.traffic import (
    EVENT_PREDICATES,
    INPUT_PREDICATES,
    motivating_example_window,
    traffic_program,
    traffic_program_prime,
)
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streamrule.reasoner import Reasoner


@pytest.fixture
def program_p():
    """The paper's program P (Listing 1)."""
    return traffic_program()


@pytest.fixture
def program_p_prime():
    """P' = P + rule r7."""
    return traffic_program_prime()


@pytest.fixture
def input_predicates():
    return INPUT_PREDICATES


@pytest.fixture
def motivating_window():
    """The window W of the motivating example (Section II-A)."""
    return motivating_example_window()


@pytest.fixture
def input_graph_p(program_p):
    return build_input_dependency_graph(program_p, INPUT_PREDICATES)


@pytest.fixture
def input_graph_p_prime(program_p_prime):
    return build_input_dependency_graph(program_p_prime, INPUT_PREDICATES)


@pytest.fixture
def plan_p(input_graph_p):
    return decompose(input_graph_p).plan


@pytest.fixture
def plan_p_prime(input_graph_p_prime):
    return decompose(input_graph_p_prime).plan


@pytest.fixture
def event_reasoner_p(program_p):
    """Reasoner R over P projecting onto the events of interest."""
    return Reasoner(program_p, input_predicates=INPUT_PREDICATES, output_predicates=EVENT_PREDICATES)


@pytest.fixture
def small_traffic_window():
    """A reproducible 300-item synthetic traffic window."""
    config = SyntheticStreamConfig(
        window_size=300,
        input_predicates=INPUT_PREDICATES,
        scheme="traffic",
        seed=7,
    )
    return generate_window(config)


def make_atom(predicate: str, *arguments) -> Atom:
    """Convenience: build a ground atom from Python values."""
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


@pytest.fixture
def atom_factory():
    return make_atom
