"""Unit tests for the figure drivers (small windows, shape assertions)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, run_figure, run_window_sweep


@pytest.fixture(scope="module")
def sweep_p():
    config = ExperimentConfig(program="P", window_sizes=(200, 400), random_partition_counts=(2, 3), seed=2017)
    return run_window_sweep(config)


@pytest.fixture(scope="module")
def sweep_p_prime():
    config = ExperimentConfig(
        program="P_prime", window_sizes=(200, 400), random_partition_counts=(2, 3), seed=2017
    )
    return run_window_sweep(config)


class TestSweep:
    def test_one_record_per_window_size(self, sweep_p):
        assert [record.window_size for record in sweep_p] == [200, 400]

    def test_all_series_present(self, sweep_p):
        for record in sweep_p:
            assert set(record.latency_ms) == {"R", "PR_Dep", "PR_Ran_k2", "PR_Ran_k3"}

    def test_dependency_accuracy_is_always_one(self, sweep_p, sweep_p_prime):
        for record in sweep_p + sweep_p_prime:
            assert record.accuracy["PR_Dep"] == 1.0

    def test_random_accuracy_below_dependency(self, sweep_p):
        for record in sweep_p:
            assert record.accuracy["PR_Ran_k3"] <= record.accuracy["PR_Dep"]

    def test_p_prime_duplication_ratio_positive(self, sweep_p_prime):
        assert all(record.duplication_ratio > 0 for record in sweep_p_prime)

    def test_p_has_no_duplication(self, sweep_p):
        assert all(record.duplication_ratio == 0 for record in sweep_p)


class TestFigureExtraction:
    def test_figure_numbers(self):
        assert set(FIGURES) == {7, 8, 9, 10}

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure(6)

    def test_figure7_latency_series(self, sweep_p):
        series = run_figure(7, records=sweep_p)
        assert series.metric == "latency"
        assert series.program == "P"
        assert series.window_sizes == (200, 400)
        assert "R" in series.series and "PR_Dep" in series.series

    def test_figure8_accuracy_series_omits_r(self, sweep_p):
        series = run_figure(8, records=sweep_p)
        assert series.metric == "accuracy"
        assert "R" not in series.series
        assert all(value == 1.0 for value in series.series["PR_Dep"])

    def test_figure9_and_10_use_p_prime(self, sweep_p_prime):
        latency = run_figure(9, records=sweep_p_prime)
        accuracy = run_figure(10, records=sweep_p_prime)
        assert latency.program == "P_prime"
        assert accuracy.program == "P_prime"

    def test_records_for_wrong_program_rejected(self, sweep_p):
        with pytest.raises(ValueError):
            run_figure(9, records=sweep_p)

    def test_value_lookup(self, sweep_p):
        series = run_figure(7, records=sweep_p)
        assert series.value("R", 200) == sweep_p[0].latency_ms["R"]
