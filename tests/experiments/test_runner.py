"""Unit tests for the reasoner suite builder and window evaluation."""

import pytest

from repro.experiments.runner import build_reasoner_suite, evaluate_window, program_by_name
from repro.programs.traffic import INPUT_PREDICATES
from repro.streaming.generator import SyntheticStreamConfig, generate_window


@pytest.fixture(scope="module")
def suite_p():
    return build_reasoner_suite("P", random_partition_counts=(2, 3))


@pytest.fixture(scope="module")
def small_window():
    config = SyntheticStreamConfig(window_size=200, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=3)
    return generate_window(config)


class TestProgramByName:
    def test_known_programs(self):
        assert len(program_by_name("P")) == 6
        assert len(program_by_name("P_prime")) == 7

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            program_by_name("Q")


class TestBuildReasonerSuite:
    def test_labels(self, suite_p):
        assert suite_p.labels == ["R", "PR_Dep", "PR_Ran_k2", "PR_Ran_k3"]

    def test_dependency_plan_for_p_has_two_partitions(self, suite_p):
        assert suite_p.decomposition.plan.community_count == 2
        assert suite_p.decomposition.duplicated_predicates == frozenset()

    def test_p_prime_suite_duplicates_car_number(self):
        suite = build_reasoner_suite("P_prime", random_partition_counts=(2,))
        assert suite.decomposition.duplicated_predicates == frozenset({"car_number"})

    def test_accepts_program_object(self, program_p):
        suite = build_reasoner_suite(program_p, random_partition_counts=(2,))
        assert suite.program is program_p


class TestEvaluateWindow:
    def test_all_configurations_are_measured(self, suite_p, small_window):
        evaluation = evaluate_window(suite_p, small_window)
        assert set(evaluation.latency_ms) == {"R", "PR_Dep", "PR_Ran_k2", "PR_Ran_k3"}
        assert set(evaluation.accuracy) == {"R", "PR_Dep", "PR_Ran_k2", "PR_Ran_k3"}
        assert evaluation.window_size == len(small_window)

    def test_reference_accuracy_is_one(self, suite_p, small_window):
        evaluation = evaluate_window(suite_p, small_window)
        assert evaluation.accuracy_of("R") == 1.0
        assert evaluation.accuracy_of("PR_Dep") == 1.0

    def test_latencies_are_positive(self, suite_p, small_window):
        evaluation = evaluate_window(suite_p, small_window)
        assert all(value > 0 for value in evaluation.latency_ms.values())

    def test_random_accuracy_not_above_dependency(self, suite_p, small_window):
        evaluation = evaluate_window(suite_p, small_window)
        assert evaluation.accuracy_of("PR_Ran_k2") <= evaluation.accuracy_of("PR_Dep")
        assert evaluation.accuracy_of("PR_Ran_k3") <= evaluation.accuracy_of("PR_Dep")
