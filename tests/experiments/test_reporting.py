"""Unit tests for table/CSV rendering."""

import pytest

from repro.experiments.figures import FigureSeries, SweepRecord
from repro.experiments.reporting import (
    records_to_csv,
    render_accuracy_table,
    render_figure,
    render_latency_table,
)


@pytest.fixture
def records():
    return [
        SweepRecord(
            program="P",
            window_size=500,
            latency_ms={"R": 30.0, "PR_Dep": 15.0},
            accuracy={"R": 1.0, "PR_Dep": 1.0},
            duplication_ratio=0.0,
        ),
        SweepRecord(
            program="P",
            window_size=1000,
            latency_ms={"R": 61.5, "PR_Dep": 30.2},
            accuracy={"R": 1.0, "PR_Dep": 0.98},
            duplication_ratio=0.0,
        ),
    ]


class TestTables:
    def test_latency_table_contains_all_rows_and_columns(self, records):
        table = render_latency_table(records, title="Latency")
        assert "Latency" in table
        assert "PR_Dep" in table and "R" in table
        assert "500" in table and "1000" in table
        assert "61.5" in table

    def test_accuracy_table_drops_r_column(self, records):
        table = render_accuracy_table(records)
        header = table.splitlines()[0]
        assert "PR_Dep" in header
        assert " R" not in header

    def test_empty_records(self):
        assert render_latency_table([]) == "(no records)"
        assert render_accuracy_table([]) == "(no records)"

    def test_render_figure(self):
        series = FigureSeries(
            figure=7,
            program="P",
            metric="latency",
            window_sizes=(500,),
            series={"R": (30.0,), "PR_Dep": (15.0,)},
        )
        text = render_figure(series)
        assert "Figure 7" in text
        assert "30.0" in text


class TestCsv:
    def test_csv_has_latency_and_accuracy_rows(self, records):
        csv_text = records_to_csv(records)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("program,window_size,metric")
        assert len(lines) == 1 + 2 * len(records)
        assert any("latency_ms" in line for line in lines)
        assert any("accuracy" in line for line in lines)

    def test_empty_records_csv(self):
        assert records_to_csv([]) == ""
