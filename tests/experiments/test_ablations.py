"""Unit tests for the ablation drivers (small windows)."""


from repro.experiments.ablations import duplication_overhead, partition_count_sweep, resolution_sweep


class TestDuplicationOverhead:
    def test_records_have_expected_shape(self):
        records = duplication_overhead(window_sizes=(200,), seed=5)
        assert len(records) == 1
        record = records[0]
        assert record.window_size == 200
        assert record.duplication_ratio > 0
        assert record.latency_with_duplication_ms > 0
        assert record.latency_without_duplication_ms > 0

    def test_overhead_is_finite(self):
        # Best-of-three: a scheduler stall during one of the two timed runs
        # can blow the overhead ratio up by an order of magnitude on a busy
        # single-core machine; the claim is about the workload, not about one
        # unlucky measurement.
        overheads = []
        for _ in range(3):
            [record] = duplication_overhead(window_sizes=(200,), seed=5)
            overheads.append(record.overhead)
            if -1.0 < record.overhead < 10.0:
                break
        assert any(-1.0 < overhead < 10.0 for overhead in overheads), overheads


class TestResolutionSweep:
    def test_each_resolution_is_reported(self):
        records = resolution_sweep(resolutions=(0.5, 1.0), window_size=200, seed=5)
        assert [record.resolution for record in records] == [0.5, 1.0]

    def test_community_counts_and_accuracy_bounds(self):
        records = resolution_sweep(resolutions=(1.0,), window_size=200, seed=5)
        for record in records:
            assert record.community_count >= 1
            assert 0.0 <= record.accuracy <= 1.0

    def test_dependency_partitioning_at_default_resolution_is_exact(self):
        [record] = resolution_sweep(resolutions=(1.0,), window_size=300, seed=7)
        assert record.accuracy == 1.0


class TestPartitionCountSweep:
    def test_all_counts_reported(self):
        accuracies = partition_count_sweep(partition_counts=(2, 4), window_size=200, seed=5)
        assert set(accuracies) == {2, 4}
        assert all(0.0 <= value <= 1.0 for value in accuracies.values())

    def test_more_partitions_tend_to_lose_accuracy(self):
        accuracies = partition_count_sweep(partition_counts=(2, 8), window_size=600, seed=5)
        assert accuracies[8] <= accuracies[2] + 0.05
