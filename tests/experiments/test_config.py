"""Unit tests for experiment configuration."""

import pytest

from repro.experiments.config import (
    DEFAULT_WINDOW_SIZES,
    PAPER_WINDOW_SIZES,
    ExperimentConfig,
    effective_window_sizes,
    paper_scale_enabled,
)


class TestWindowSizes:
    def test_paper_sizes_match_the_evaluation_section(self):
        assert PAPER_WINDOW_SIZES == (5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000)

    def test_default_sizes_preserve_the_sweep_shape(self):
        assert len(DEFAULT_WINDOW_SIZES) == len(PAPER_WINDOW_SIZES)
        ratios = [paper / default for paper, default in zip(PAPER_WINDOW_SIZES, DEFAULT_WINDOW_SIZES)]
        assert all(ratio == ratios[0] for ratio in ratios)

    def test_effective_window_sizes_explicit(self):
        assert effective_window_sizes([100, 200]) == (100, 200)

    def test_effective_window_sizes_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert effective_window_sizes() == DEFAULT_WINDOW_SIZES
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert effective_window_sizes() == PAPER_WINDOW_SIZES
        assert paper_scale_enabled()


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.program == "P"
        assert config.random_partition_counts == (2, 3, 4, 5)

    def test_invalid_program(self):
        with pytest.raises(ValueError):
            ExperimentConfig(program="Q")

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            ExperimentConfig(repetitions=0)

    def test_empty_window_sizes(self):
        with pytest.raises(ValueError):
            ExperimentConfig(window_sizes=())
