"""The legacy API works unchanged and warns exactly once per construct."""

from __future__ import annotations

import warnings

import pytest

from repro.core.partitioner import DependencyPartitioner, HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule import reset_deprecation_warnings
from repro.streamrule.backends import ExecutionMode, InlineBackend, ProcessPoolBackend
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.pipeline import StreamRulePipeline
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession


@pytest.fixture(autouse=True)
def fresh_deprecation_registry():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def traffic_stream(length, seed=11):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def traffic_reasoner():
    return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)


def recorded_warnings(action):
    """Run ``action`` under simplefilter('always') and return the warnings."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        action()
    return [entry for entry in caught if issubclass(entry.category, DeprecationWarning)]


class TestExecutionModeShim:
    def test_mode_construction_warns_once_and_behaves(self, plan_p, motivating_window):
        partitioner = DependencyPartitioner(plan_p)
        reasoner = traffic_reasoner()

        first = recorded_warnings(lambda: ParallelReasoner(reasoner, partitioner, mode=ExecutionMode.SERIAL))
        assert len(first) == 1
        assert "ExecutionMode is deprecated" in str(first[0].message)
        # A second legacy construction is silent: one warning per construct.
        second = recorded_warnings(
            lambda: ParallelReasoner(reasoner, partitioner, mode=ExecutionMode.SIMULATED_PARALLEL)
        )
        assert second == []

        legacy = ParallelReasoner(reasoner, partitioner, mode=ExecutionMode.SERIAL)
        with StreamSession(reasoner, partitioner=partitioner, backend=InlineBackend(simulated=False)) as session:
            modern = session.evaluate_window(motivating_window)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = legacy.reason(motivating_window)
        assert {frozenset(a) for a in result.answers} == {frozenset(a) for a in modern.answers}

    def test_default_mode_does_not_warn(self, plan_p):
        caught = recorded_warnings(lambda: ParallelReasoner(traffic_reasoner(), DependencyPartitioner(plan_p)))
        assert caught == []

    def test_mode_and_backend_together_rejected(self, plan_p):
        with pytest.raises(ValueError):
            ParallelReasoner(
                traffic_reasoner(),
                DependencyPartitioner(plan_p),
                mode=ExecutionMode.SERIAL,
                backend=InlineBackend(),
            )

    def test_max_workers_with_backend_rejected(self, plan_p):
        # max_workers sizes the mode->backend mapping; with an explicit
        # backend it would be silently dropped, so it is refused instead.
        with pytest.raises(ValueError):
            ParallelReasoner(
                traffic_reasoner(),
                DependencyPartitioner(plan_p),
                backend=InlineBackend(),
                max_workers=4,
            )

    def test_mode_mapping_reaches_process_backend(self, plan_p):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            parallel = ParallelReasoner(
                traffic_reasoner(), DependencyPartitioner(plan_p), mode=ExecutionMode.PROCESSES, max_workers=1
            )
        assert isinstance(parallel.backend, ProcessPoolBackend)
        parallel.close()


class TestReasonKwargShims:
    def test_incremental_track_kwargs_warn_once_and_behave(self):
        reasoner = traffic_reasoner()
        window = traffic_stream(40)

        first = recorded_warnings(lambda: reasoner.reason(window, incremental=True, track=2))
        assert len(first) == 1
        assert "reason(incremental=..., track=...)" in str(first[0].message)
        second = recorded_warnings(lambda: reasoner.reason(window, track=1))
        assert second == []

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = reasoner.reason(window, incremental=False, track=0)
        plain = reasoner.reason(window)
        assert {frozenset(a) for a in legacy.answers} == {frozenset(a) for a in plain.answers}

    def test_plain_reason_does_not_warn(self):
        reasoner = traffic_reasoner()
        caught = recorded_warnings(lambda: reasoner.reason(traffic_stream(20)))
        assert caught == []

    def test_parallel_reason_warns_once_and_matches_session(self, plan_p, motivating_window):
        reasoner = traffic_reasoner()
        parallel = ParallelReasoner(reasoner, DependencyPartitioner(plan_p))

        results = []
        first = recorded_warnings(lambda: results.append(parallel.reason(motivating_window)))
        assert len(first) == 1
        second = recorded_warnings(lambda: results.append(parallel.reason(motivating_window)))
        assert second == []
        modern = parallel.session.evaluate_window(motivating_window)
        for result in results:
            assert {frozenset(a) for a in result.answers} == {frozenset(a) for a in modern.answers}


class TestPipelineShim:
    def test_process_stream_warns_once_and_matches_session(self):
        stream = traffic_stream(120)
        window = CountWindow(size=40)
        pipeline = StreamRulePipeline(traffic_reasoner(), window=window)

        collected = []
        first = recorded_warnings(lambda: collected.extend(pipeline.process_stream(stream)))
        assert len(first) == 1
        assert "process_stream is deprecated" in str(first[0].message)
        second = recorded_warnings(lambda: collected.extend(pipeline.process_stream(stream)))
        assert second == []

        with StreamSession(traffic_reasoner(), window=window, max_combinations=None) as session:
            expected = list(session.process(stream))
        legacy_answers = [{frozenset(a) for a in solution.answers} for solution in collected[: len(expected)]]
        modern_answers = [{frozenset(a) for a in solution.answers} for solution in expected]
        assert legacy_answers == modern_answers

    def test_process_stream_on_pipelined_session_warns_and_matches(self):
        """The legacy shim over a *pipelined* session still warns and behaves.

        A ``ParallelReasoner`` on a pipelined backend hands the shim a
        session that dispatches windows ahead; the deprecation warning must
        fire exactly once regardless, and the streamed solutions must match
        the synchronous reference.
        """
        from repro.streamrule.backends import ThreadPoolBackend

        stream = traffic_stream(120)
        window = CountWindow(size=40)
        parallel = ParallelReasoner(
            traffic_reasoner(), HashPartitioner(2), backend=ThreadPoolBackend(max_workers=2)
        )
        parallel.session.max_inflight = 4  # explicit dispatch-ahead
        with StreamRulePipeline(parallel, window=window) as pipeline:
            collected = []
            first = recorded_warnings(lambda: collected.extend(pipeline.process_stream(stream)))
            assert len(first) == 1
            assert "process_stream is deprecated" in str(first[0].message)
            # The shim's session inherited the pipelined in-flight bound.
            assert pipeline.session().max_inflight == 4
            second = recorded_warnings(lambda: collected.extend(pipeline.process_stream(stream)))
            assert second == []
        with StreamSession(
            traffic_reasoner(), window=window, partitioner=HashPartitioner(2)
        ) as reference_session:
            expected = list(reference_session.process(stream))
        legacy_answers = [{frozenset(a) for a in solution.answers} for solution in collected[: len(expected)]]
        modern_answers = [{frozenset(a) for a in solution.answers} for solution in expected]
        assert legacy_answers == modern_answers

    def test_parallel_pipeline_still_works(self, plan_p):
        stream = traffic_stream(80)
        parallel = ParallelReasoner(traffic_reasoner(), DependencyPartitioner(plan_p))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with StreamRulePipeline(parallel, window=CountWindow(size=40)) as pipeline:
                solutions = pipeline.process_all(stream)
        assert len(solutions) == 2

    def test_hash_partitioned_pipeline_unchanged(self):
        stream = traffic_stream(60)
        parallel = ParallelReasoner(traffic_reasoner(), HashPartitioner(2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with StreamRulePipeline(parallel, window=CountWindow(size=30)) as pipeline:
                solutions = pipeline.process_all(stream)
        assert [solution.window_index for solution in solutions] == [0, 1]
