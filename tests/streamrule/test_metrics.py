"""Unit tests for the latency/metrics records."""

import time

import pytest

from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.005)
        assert timer.seconds >= first


class TestLatencyBreakdown:
    def test_totals(self):
        breakdown = LatencyBreakdown(
            transformation_seconds=0.1,
            grounding_seconds=0.2,
            solving_seconds=0.3,
            partitioning_seconds=0.05,
            combining_seconds=0.05,
        )
        assert breakdown.reasoning_seconds == pytest.approx(0.5)
        assert breakdown.total_seconds == pytest.approx(0.7)

    def test_merged_with(self):
        first = LatencyBreakdown(grounding_seconds=0.1)
        second = LatencyBreakdown(grounding_seconds=0.2, solving_seconds=0.3)
        merged = first.merged_with(second)
        assert merged.grounding_seconds == pytest.approx(0.3)
        assert merged.solving_seconds == pytest.approx(0.3)

    def test_defaults_are_zero(self):
        assert LatencyBreakdown().total_seconds == 0.0


class TestReasonerMetrics:
    def test_millisecond_conversion(self):
        metrics = ReasonerMetrics(window_size=10, latency_seconds=0.25)
        assert metrics.latency_milliseconds == pytest.approx(250.0)

    def test_as_dict_contains_all_stages(self):
        metrics = ReasonerMetrics(
            window_size=10,
            latency_seconds=0.25,
            breakdown=LatencyBreakdown(grounding_seconds=0.1, solving_seconds=0.15),
            partition_sizes=[5, 5],
            answer_count=1,
            duplication_ratio=0.2,
        )
        record = metrics.as_dict()
        assert record["window_size"] == 10
        assert record["latency_ms"] == pytest.approx(250.0)
        assert record["grounding_ms"] == pytest.approx(100.0)
        assert record["duplication_ratio"] == pytest.approx(0.2)
