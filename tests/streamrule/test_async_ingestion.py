"""Pipelined ingestion: backpressure, ordering, parity with the sync path.

The contract under test (see ``docs/async-ingestion.md``): whatever
``max_inflight`` is and however pushes and result drains interleave, the
facade emits exactly the solutions of the synchronous path, in window
order -- pipelining may only change *when* work happens, never *what* comes
out.  ``max_inflight=1`` must reproduce the pre-pipelining behaviour
exactly (every window gathered before ``push`` returns).
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.backends import (
    InlineBackend,
    LoopbackSocketBackend,
    ThreadPoolBackend,
)
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import DEFAULT_MAX_INFLIGHT, StreamSession


def traffic_stream(length, seed=23):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def traffic_reasoner():
    return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)


def fingerprint(solution):
    """Everything observable about one solution (order-sensitive answers set)."""
    return (
        solution.window_index,
        solution.window_size,
        {frozenset(answer) for answer in solution.answers},
        solution.solution_triples,
    )


#: Shared stream + window for the interleaving tests.
STREAM_LENGTH = 60
WINDOW = CountWindow(size=20, slide=10, emit_partial=False)

_REFERENCE = None


def reference_solutions():
    """The synchronous answer trajectory (computed once per test run)."""
    global _REFERENCE
    if _REFERENCE is None:
        with StreamSession(
            traffic_reasoner(), window=WINDOW, backend=InlineBackend(simulated=False)
        ) as session:
            session.push(traffic_stream(STREAM_LENGTH))
            session.finish()
            _REFERENCE = [fingerprint(solution) for solution in session.results()]
        assert _REFERENCE  # the scenario must produce windows
    return _REFERENCE


class TestSynchronousParity:
    """``max_inflight=1`` is exactly the pre-pipelining session."""

    def test_push_gathers_before_returning(self):
        stream = traffic_stream(STREAM_LENGTH)
        with StreamSession(
            traffic_reasoner(), window=WINDOW, backend=ThreadPoolBackend(max_workers=2), max_inflight=1
        ) as session:
            collected = []
            for triple in stream:
                count = session.push([triple])
                # Synchronous contract: every dispatched window is already
                # gathered, so results() drains without blocking and nothing
                # stays in flight between pushes.
                assert not session._inflight
                drained = list(session.results())
                assert len(drained) == count
                collected.extend(drained)
            session.finish()
            collected.extend(session.results())
        assert [fingerprint(solution) for solution in collected] == reference_solutions()
        assert session.ingestion.inflight_high_water == 1
        assert session.ingestion.dispatched_ahead == 0

    def test_inline_backend_defaults_to_synchronous(self):
        session = StreamSession(traffic_reasoner(), window=WINDOW)
        assert session.effective_max_inflight() == 1

    def test_pipelined_backend_defaults_to_dispatch_ahead(self):
        session = StreamSession(
            traffic_reasoner(), window=WINDOW, backend=ThreadPoolBackend(max_workers=2)
        )
        assert session.effective_max_inflight() == DEFAULT_MAX_INFLIGHT
        session.close()

    def test_max_inflight_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamSession(traffic_reasoner(), max_inflight=0)


class TestInterleavings:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_any_interleaving_matches_the_synchronous_path(self, data):
        """Chunked pushes, partial drains, any bound: identical solutions."""
        max_inflight = data.draw(st.sampled_from([1, 2, 8, "adaptive"]), label="max_inflight")
        stream = traffic_stream(STREAM_LENGTH)
        chunk_sizes = data.draw(
            st.lists(st.integers(min_value=1, max_value=25), min_size=1, max_size=8),
            label="chunk_sizes",
        )
        drain_after = data.draw(
            st.lists(st.booleans(), min_size=len(chunk_sizes), max_size=len(chunk_sizes)),
            label="drain_after",
        )
        collected = []
        with StreamSession(
            traffic_reasoner(),
            window=WINDOW,
            backend=ThreadPoolBackend(max_workers=2),
            max_inflight=max_inflight,
        ) as session:
            cursor = 0
            for size, drain in zip(chunk_sizes, drain_after):
                chunk = stream[cursor : cursor + size]
                cursor += size
                session.push(chunk)
                if drain:
                    collected.extend(session.results())
            session.push(stream[cursor:])
            session.finish()
            collected.extend(session.results())
            if isinstance(max_inflight, int):
                assert session.ingestion.inflight_high_water <= max_inflight
            else:
                bound = session.inflight_controller.ceiling
                assert session.ingestion.inflight_high_water <= bound
        assert [fingerprint(solution) for solution in collected] == reference_solutions()

    def test_nonblocking_drain_keeps_the_pipeline_full(self):
        """results(wait=False) never waits, so push/drain loops stay pipelined."""
        stream = traffic_stream(80)
        backend = _SlowBackend(0.05, max_workers=1)
        with StreamSession(
            traffic_reasoner(), window=CountWindow(size=20), backend=backend, max_inflight=8
        ) as session:
            collected = []
            for index in range(0, len(stream), 20):
                session.push(stream[index : index + 20])
                collected.extend(session.results(wait=False))
            # All four windows dispatched; the slow backend cannot have
            # finished them all, so the non-blocking drain left some in
            # flight instead of stalling the producer on them.
            assert session.ingestion.inflight_high_water > 1
            assert len(collected) < 4
            session.finish()  # the barrier gathers the rest
            collected.extend(session.results(wait=False))
            assert [solution.window_index for solution in collected] == [0, 1, 2, 3]

    def test_pipelined_push_dispatches_ahead(self):
        stream = traffic_stream(STREAM_LENGTH)
        with StreamSession(
            traffic_reasoner(), window=WINDOW, backend=ThreadPoolBackend(max_workers=2), max_inflight=3
        ) as session:
            session.push(stream)
            session.finish()
            solutions = [fingerprint(solution) for solution in session.results()]
        assert solutions == reference_solutions()
        assert session.ingestion.dispatched_ahead > 0
        assert 1 < session.ingestion.inflight_high_water <= 3


class _SlowBackend(ThreadPoolBackend):
    """A pipelined backend whose every evaluation takes ``delay`` seconds."""

    name = "slow-threads"

    def __init__(self, delay: float, **kwargs):
        super().__init__(**kwargs)
        self.delay = delay

    def _submit(self, item):
        reasoner = self._require_started()
        assert self._pool is not None

        def _evaluate():
            time.sleep(self.delay)
            return reasoner.reason_item(item)

        return self._pool.submit(_evaluate)


class _ExplodingBackend(ThreadPoolBackend):
    """A pipelined backend whose futures always fail (deferred-error probe)."""

    name = "exploding"

    def _submit(self, item):
        self._require_started()
        future: Future = Future()
        future.set_exception(RuntimeError("deferred evaluation error"))
        return future


class TestBackpressure:
    def test_full_queue_with_slow_backend_stalls_the_producer(self):
        stream = traffic_stream(80)
        backend = _SlowBackend(0.05, max_workers=1)
        with StreamSession(
            traffic_reasoner(), window=CountWindow(size=20), backend=backend, max_inflight=2
        ) as session:
            session.push(stream)  # four windows through a 2-deep pipe
            session.finish()
            solutions = list(session.results())
        assert len(solutions) == 4
        assert session.ingestion.backpressure_stalls >= 1
        assert session.ingestion.backpressure_wait_seconds > 0.0
        assert session.ingestion.inflight_high_water == 2

    def test_queue_depth_reports_inflight_items(self):
        backend = _SlowBackend(0.2, max_workers=1)
        reasoner = traffic_reasoner()
        with StreamSession(
            reasoner, window=CountWindow(size=10), backend=backend, max_inflight=4
        ) as session:
            assert backend.queue_depth() == 0
            session.push(traffic_stream(20))  # two windows dispatched, none gathered
            assert backend.queue_depth() > 0
            session.finish()
            list(session.results())
        assert backend.queue_depth() == 0
        assert backend.queue_high_water >= 1


class TestDeferredOutcomes:
    def test_evaluation_errors_surface_at_the_gather_point(self):
        backend = _ExplodingBackend(max_workers=1)
        session = StreamSession(
            traffic_reasoner(), window=CountWindow(size=10), backend=backend, max_inflight=8
        )
        # Dispatch succeeds: the error lives in the future, not in push.
        assert session.push(traffic_stream(20)) == 2
        with pytest.raises(RuntimeError, match="deferred evaluation error"):
            session.finish()
        session.backend.close()

    def test_exception_exit_abandons_inflight_instead_of_masking(self):
        """A failing `with` body wins over deferred errors in the pipeline."""
        backend = _ExplodingBackend(max_workers=1)
        with pytest.raises(ValueError, match="the original error"):
            with StreamSession(
                traffic_reasoner(), window=CountWindow(size=10), backend=backend, max_inflight=8
            ) as session:
                session.push(traffic_stream(20))  # futures hold RuntimeErrors
                raise ValueError("the original error")
        assert not backend.started  # resources still released

    def test_close_gathers_inflight_windows_for_results(self):
        stream = traffic_stream(STREAM_LENGTH)
        session = StreamSession(
            traffic_reasoner(), window=WINDOW, backend=ThreadPoolBackend(max_workers=2), max_inflight=8
        )
        session.push(stream)
        session.finish()
        session.close()
        # Solutions dispatched before close stay drainable after it.
        assert [fingerprint(solution) for solution in session.results()] == reference_solutions()

    def test_late_connection_loss_falls_back_inline(self):
        stream = traffic_stream(STREAM_LENGTH)
        partitioner = HashPartitioner(2)
        with StreamSession(
            traffic_reasoner(),
            window=WINDOW,
            partitioner=partitioner,
            backend=InlineBackend(simulated=False),
        ) as healthy:
            healthy.push(stream)
            healthy.finish()
            expected = [fingerprint(solution) for solution in healthy.results()]
        backend = LoopbackSocketBackend(max_workers=1)
        with StreamSession(
            traffic_reasoner(),
            window=WINDOW,
            partitioner=partitioner,
            backend=backend,
            max_inflight=8,
        ) as session:
            # Warm the backend, then sever the only worker connection: every
            # window dispatched afterwards fails its future at gather time
            # and must be re-evaluated inline.
            session.evaluate_window(stream[:10])
            backend.drop_connection(0)
            session.push(stream)
            session.finish()
            solutions = [fingerprint(solution) for solution in session.results()]
            assert session.fallbacks > 0
        assert solutions == expected
