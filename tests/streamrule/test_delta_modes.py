"""Cross-mode equivalence under delta-grounding.

Acceptance contract of the delta path: for every windowed stream, the
answer sets produced with delta-grounding enabled (sliding-window deltas
threaded down to per-partition incremental grounding) are identical to the
ground-from-scratch answer sets, in all four execution modes.  The delta
machinery may change *how* a window is grounded (exact hit, repair, full
rebuild) but never *what* the window answers.
"""

from __future__ import annotations

import pytest

from repro.asp.grounding.grounder import GroundingCache
from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import DependencyPartitioner, HashPartitioner, RandomPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow, TimeWindow
from repro.streamrule.backends import (
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    SharedMemoryBackend,
    ThreadPoolBackend,
)
from repro.streamrule.parallel import ExecutionMode, ParallelReasoner
from repro.streamrule.pipeline import StreamRulePipeline
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from tests.conftest import make_atom

ALL_MODES = (
    ExecutionMode.SERIAL,
    ExecutionMode.SIMULATED_PARALLEL,
    ExecutionMode.THREADS,
    ExecutionMode.PROCESSES,
)

#: Direct-backend rows extending the mode matrix (notably the loopback
#: socket, which has no ExecutionMode equivalent).
BACKEND_FACTORIES = {
    "inline": lambda workers: InlineBackend(),
    "inline-serial": lambda workers: InlineBackend(simulated=False),
    "threads": lambda workers: ThreadPoolBackend(max_workers=workers),
    "processes": lambda workers: ProcessPoolBackend(max_workers=workers),
    "loopback-socket": lambda workers: LoopbackSocketBackend(max_workers=workers),
    "shared-memory": lambda workers: SharedMemoryBackend(max_workers=workers),
}

#: Every runner of the delta-equivalence matrix: the four legacy modes plus
#: the named backend factories.
ALL_RUNNERS = list(ALL_MODES) + list(BACKEND_FACTORIES)


def runner_id(runner):
    return runner.value if isinstance(runner, ExecutionMode) else f"backend:{runner}"


def make_parallel(reasoner, partitioner, runner, max_workers=2):
    """Build a ParallelReasoner for a mode enum or a backend-factory name."""
    if isinstance(runner, ExecutionMode):
        return ParallelReasoner(reasoner, partitioner, mode=runner, max_workers=max_workers)
    return ParallelReasoner(
        reasoner, partitioner, backend=BACKEND_FACTORIES[runner](max_workers)
    )


def traffic_stream(length, seed=23):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def cached_reasoner():
    return Reasoner(
        traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
    )


def scratch_answers_per_window(window_policy, stream, partitioner):
    """Reference: every window evaluated serially inline without any cache."""
    reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
    with StreamSession(
        reasoner, partitioner=partitioner, backend=InlineBackend(simulated=False)
    ) as session:
        return [
            {frozenset(answer) for answer in session.evaluate_window(list(window)).answers}
            for window in window_policy.windows(stream)
        ]


def delta_answers_per_window(window_policy, stream, partitioner, runner, max_workers=2):
    """Delta path: every window evaluated with its slide delta and a cache."""
    with make_parallel(cached_reasoner(), partitioner, runner, max_workers) as parallel:
        session = parallel.session
        return [
            {frozenset(answer) for answer in session.evaluate_window(list(delta.window), delta=delta).answers}
            for delta in window_policy.deltas(stream)
        ]


class TestSlidingWindowEquivalence:
    pytestmark = pytest.mark.slow  # PROCESSES rows spin up worker pools

    @pytest.mark.parametrize("runner", ALL_RUNNERS, ids=runner_id)
    def test_count_window_sliding(self, plan_p, runner):
        stream = traffic_stream(240)
        window_policy = CountWindow(size=80, slide=30)
        partitioner = DependencyPartitioner(plan_p)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        actual = delta_answers_per_window(window_policy, stream, partitioner, runner)
        assert actual == expected

    @pytest.mark.parametrize("runner", ALL_RUNNERS, ids=runner_id)
    def test_count_window_hash_partitioning(self, runner):
        stream = traffic_stream(180)
        window_policy = CountWindow(size=60, slide=20)
        partitioner = HashPartitioner(3)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        actual = delta_answers_per_window(window_policy, stream, partitioner, runner)
        assert actual == expected

    @pytest.mark.parametrize("runner", ALL_RUNNERS, ids=runner_id)
    def test_time_window_sliding(self, plan_p, runner):
        stream = traffic_stream(150)
        window_policy = TimeWindow(duration=50.0, slide=20.0)
        partitioner = DependencyPartitioner(plan_p)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        actual = delta_answers_per_window(window_policy, stream, partitioner, runner)
        assert actual == expected

    def test_random_partitioner_ignores_delta_hint(self, ):
        # Random layouts reshuffle between windows; the delta hint must be
        # ignored (no partition-level continuity) yet answers stay equal to
        # the same partitioner's non-delta evaluation under a fixed seed.
        stream = traffic_stream(120)
        window_policy = CountWindow(size=40, slide=15)
        reasoner = cached_reasoner()
        with ParallelReasoner(reasoner, RandomPartitioner(3, seed=5), mode=ExecutionMode.SERIAL) as parallel:
            results = [parallel.reason(list(delta.window), delta=delta) for delta in window_policy.deltas(stream)]
        with_delta = [{frozenset(answer) for answer in result.answers} for result in results]
        assert all(result.metrics.delta_repairs == 0 for result in results)
        plain = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with ParallelReasoner(plain, RandomPartitioner(3, seed=5), mode=ExecutionMode.SERIAL) as parallel:
            without_delta = [
                {frozenset(answer) for answer in parallel.reason(list(window)).answers}
                for window in window_policy.windows(stream)
            ]
        assert with_delta == without_delta


class TestNonStratifiedDeltaEquivalence:
    pytestmark = pytest.mark.slow

    CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""

    @pytest.mark.parametrize("runner", ALL_RUNNERS, ids=runner_id)
    def test_choice_program_sliding_windows(self, runner):
        stream = [make_atom("item", index % 5) for index in range(24)]
        window_policy = CountWindow(size=8, slide=3)
        program = parse_program(self.CHOICE_PROGRAM)

        reference = Reasoner(program, input_predicates=["item"])
        expected = [
            {frozenset(answer) for answer in reference.reason(list(window)).answers}
            for window in window_policy.windows(stream)
        ]

        cached = Reasoner(program, input_predicates=["item"], grounding_cache=GroundingCache())
        with make_parallel(cached, HashPartitioner(2), runner, max_workers=2) as parallel:
            combined = [
                {
                    frozenset(answer)
                    for answer in parallel.session.evaluate_window(list(delta.window), delta=delta).answers
                }
                for delta in window_policy.deltas(stream)
            ]
        # Partition-combined answers for a single-predicate choice program
        # coincide with the unpartitioned ones (no cross-partition joins).
        assert combined == expected


class TestBackendWindowKindEquivalence:
    """Acceptance matrix: backends x {tumbling, sliding, hopping} x delta on/off.

    Identical answer sets for inline (serial and simulated), threads,
    processes, and loopback-socket backends on every window kind, with the
    delta path enabled and disabled.
    """

    pytestmark = pytest.mark.slow

    WINDOW_SCENARIOS = {
        "tumbling": CountWindow(size=60),
        "sliding": CountWindow(size=60, slide=20),
        "hopping": CountWindow(size=40, slide=60),
    }

    @pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES), ids=str)
    @pytest.mark.parametrize("window_kind", sorted(WINDOW_SCENARIOS), ids=str)
    @pytest.mark.parametrize("use_delta", [True, False], ids=["delta", "no-delta"])
    def test_backend_equivalence(self, backend_name, window_kind, use_delta):
        stream = traffic_stream(200)
        window_policy = self.WINDOW_SCENARIOS[window_kind]
        partitioner = HashPartitioner(3)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        backend = BACKEND_FACTORIES[backend_name](2)
        with StreamSession(cached_reasoner(), partitioner=partitioner, backend=backend) as session:
            if use_delta:
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(delta.window), delta=delta).answers}
                    for delta in window_policy.deltas(stream)
                ]
            else:
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(window)).answers}
                    for window in window_policy.windows(stream)
                ]
        assert actual == expected


class TestDeltaMetricsFlow:
    def test_pipeline_reports_repairs(self):
        stream = traffic_stream(200)
        cache = GroundingCache()
        reasoner = Reasoner(
            traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=cache
        )
        with StreamRulePipeline(reasoner, window=CountWindow(size=80, slide=20)) as pipeline:
            solutions = list(pipeline.process_stream(stream))
        assert len(solutions) >= 5
        repairs = sum(solution.metrics.delta_repairs for solution in solutions)
        assert repairs >= len(solutions) - 2  # all but the first window (and
        # at most one over-budget straggler) are delta-repaired
        assert sum(solution.metrics.repair_size for solution in solutions) > 0
        assert cache.statistics()["delta_repairs"] == float(repairs)

    def test_tumbling_pipeline_stays_on_exact_cache_path(self):
        stream = traffic_stream(200)
        cache = GroundingCache()
        reasoner = Reasoner(
            traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=cache
        )
        with StreamRulePipeline(reasoner, window=CountWindow(size=50)) as pipeline:
            solutions = list(pipeline.process_stream(stream))
        # Tumbling windows carry nothing over: no delta state is maintained.
        assert all(solution.metrics.delta_repairs == 0 for solution in solutions)
        assert cache.statistics()["delta_states"] == 0.0

    def test_parallel_metrics_aggregate_repairs(self, plan_p):
        stream = traffic_stream(200)
        window_policy = CountWindow(size=80, slide=20)
        with ParallelReasoner(
            cached_reasoner(), DependencyPartitioner(plan_p), mode=ExecutionMode.SERIAL
        ) as parallel:
            results = [
                parallel.reason(list(delta.window), delta=delta) for delta in window_policy.deltas(stream)
            ]
        assert sum(result.metrics.delta_repairs for result in results) > 0
        repaired = [result for result in results if result.metrics.delta_repairs]
        assert all(result.metrics.repair_size > 0 for result in repaired)
