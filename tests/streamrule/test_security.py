"""TLS and shared-token auth on the worker wire, sync and async.

The acceptance bar (ISSUE 10): the hardened handshake must work on both
clients, and every misconfiguration -- wrong token, missing token,
plaintext client against a TLS daemon, TLS client against a plaintext
daemon -- must fail *loudly* with :class:`HandshakeError`, never hang and
never silently downgrade.  The certs are self-signed throwaways minted per
module with the ``openssl`` binary (skipped where it is absent), with a
``subjectAltName`` for 127.0.0.1 exactly as the CI workflow mints them.
"""

from __future__ import annotations

import asyncio
import pickle
import shutil
import ssl
import subprocess

import pytest

from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.aio import AsyncWorkerClient
from repro.streamrule.backends import InlineBackend, TcpBackend
from repro.streamrule.codec import encode_reasoner_spec
from repro.streamrule.errors import HandshakeError
from repro.streamrule.net import WorkerClient
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.work import WorkItem
from repro.streamrule.worker import WorkerServer, spawn_local_workers
from tests.conftest import make_atom
from tests.streamrule.conftest import client_ssl_context

OPENSSL = shutil.which("openssl")
pytestmark = pytest.mark.skipif(OPENSSL is None, reason="openssl binary unavailable")

TOKEN = "streamrule-test-token"

CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""


def choice_reasoner():
    return Reasoner(parse_program(CHOICE_PROGRAM), input_predicates=["item"])


def choice_payload():
    return pickle.dumps(choice_reasoner())


def work_item(count=3):
    return WorkItem(facts=tuple(make_atom("item", index) for index in range(count)), track=0, epoch=0)


@pytest.fixture(scope="module")
def tls_material(tmp_path_factory):
    """A throwaway self-signed cert/key pair valid for IP 127.0.0.1."""
    directory = tmp_path_factory.mktemp("tls")
    key, cert = directory / "key.pem", directory / "cert.pem"
    subprocess.run(
        [
            OPENSSL, "req", "-x509", "-newkey", "rsa:2048", "-nodes",
            "-keyout", str(key), "-out", str(cert),
            "-days", "2", "-subj", "/CN=streamrule-test",
            "-addext", "subjectAltName=IP:127.0.0.1",
        ],
        check=True,
        capture_output=True,
    )
    return str(cert), str(key)


@pytest.fixture(scope="module")
def server_context(tls_material):
    cert, key = tls_material
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(cert, key)
    return context


@pytest.fixture()
def client_context(tls_material):
    cert, _key = tls_material
    return client_ssl_context(cert)


# --------------------------------------------------------------------------- #
# Sync client
# --------------------------------------------------------------------------- #
class TestSyncHandshake:
    def test_tls_with_token_round_trip(self, server_context, client_context):
        with WorkerServer(port=0, ssl_context=server_context, auth_token=TOKEN) as server:
            with WorkerClient(
                server.address, choice_payload(), ssl_context=client_context, auth_token=TOKEN
            ) as client:
                result = client.submit_item(work_item(3))
        assert len(result.answers) == 8  # 2^3 picked/dropped choices

    def test_wrong_token_fails_loudly(self, server_context, client_context):
        with WorkerServer(port=0, ssl_context=server_context, auth_token=TOKEN) as server:
            with pytest.raises(HandshakeError, match="authentication"):
                WorkerClient(
                    server.address,
                    choice_payload(),
                    ssl_context=client_context,
                    auth_token="not-the-token",
                )

    def test_missing_token_fails_loudly(self, server_context, client_context):
        with WorkerServer(port=0, ssl_context=server_context, auth_token=TOKEN) as server:
            with pytest.raises(HandshakeError, match="auth"):
                WorkerClient(server.address, choice_payload(), ssl_context=client_context)

    def test_token_only_no_tls(self):
        """Auth works on a plaintext connection too (token without TLS)."""
        with WorkerServer(port=0, auth_token=TOKEN) as server:
            with WorkerClient(server.address, choice_payload(), auth_token=TOKEN) as client:
                result = client.submit_item(work_item(2))
        assert len(result.answers) == 4

    def test_plaintext_client_against_tls_server(self, server_context):
        """No silent downgrade: a cleartext client errors out, fast."""
        with WorkerServer(port=0, ssl_context=server_context) as server:
            with pytest.raises(HandshakeError):
                WorkerClient(server.address, choice_payload(), attempts=1, connect_timeout=5.0)

    def test_tls_client_against_plaintext_server(self, client_context):
        with WorkerServer(port=0) as server:
            with pytest.raises(HandshakeError):
                WorkerClient(
                    server.address, choice_payload(), ssl_context=client_context, attempts=1
                )

    def test_untrusted_certificate_is_refused(self, server_context, tmp_path):
        """A client trusting a *different* CA refuses the daemon's cert."""
        other_key, other_cert = tmp_path / "other-key.pem", tmp_path / "other-cert.pem"
        subprocess.run(
            [
                OPENSSL, "req", "-x509", "-newkey", "rsa:2048", "-nodes",
                "-keyout", str(other_key), "-out", str(other_cert),
                "-days", "2", "-subj", "/CN=not-the-fleet",
                "-addext", "subjectAltName=IP:127.0.0.1",
            ],
            check=True,
            capture_output=True,
        )
        with WorkerServer(port=0, ssl_context=server_context) as server:
            with pytest.raises(HandshakeError):
                WorkerClient(
                    server.address,
                    choice_payload(),
                    ssl_context=client_ssl_context(str(other_cert)),
                    attempts=1,
                )


# --------------------------------------------------------------------------- #
# Async client
# --------------------------------------------------------------------------- #
class TestAsyncHandshake:
    def test_tls_with_token_round_trip(self, server_context, client_context):
        async def run():
            with WorkerServer(port=0, ssl_context=server_context, auth_token=TOKEN) as server:
                client = await AsyncWorkerClient.connect(
                    server.address,
                    choice_payload(),
                    ssl_context=client_context,
                    auth_token=TOKEN,
                )
                try:
                    return await client.submit_item(work_item(3))
                finally:
                    await client.close()

        result = asyncio.run(run())
        assert len(result.answers) == 8

    def test_wrong_token_fails_loudly(self, server_context, client_context):
        async def run():
            with WorkerServer(port=0, ssl_context=server_context, auth_token=TOKEN) as server:
                with pytest.raises(HandshakeError, match="authentication"):
                    await AsyncWorkerClient.connect(
                        server.address,
                        choice_payload(),
                        ssl_context=client_context,
                        auth_token="not-the-token",
                    )

        asyncio.run(run())

    def test_plaintext_client_against_tls_server(self, server_context):
        async def run():
            with WorkerServer(port=0, ssl_context=server_context) as server:
                with pytest.raises(HandshakeError):
                    await AsyncWorkerClient.connect(server.address, choice_payload(), attempts=1)

        asyncio.run(run())

    def test_tls_client_against_plaintext_server(self, client_context):
        async def run():
            with WorkerServer(port=0) as server:
                with pytest.raises(HandshakeError):
                    await AsyncWorkerClient.connect(
                        server.address, choice_payload(), ssl_context=client_context, attempts=1
                    )

        asyncio.run(run())


# --------------------------------------------------------------------------- #
# Full hardened stack: CLI daemon + TcpBackend, TLS + token + restricted codec
# --------------------------------------------------------------------------- #
class TestHardenedEndToEnd:
    def test_cli_daemon_full_stack_matches_inline(self, tls_material):
        """A ``--tls-cert --tls-key --auth-token --restricted`` daemon serves
        a TLS+token+restricted ``TcpBackend`` the same answers as inline."""
        cert, key = tls_material
        stream = list(
            generate_window(
                SyntheticStreamConfig(
                    window_size=80, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=61
                )
            )
        )
        window_policy = CountWindow(size=40, slide=20)
        partitioner = HashPartitioner(2)

        def reasoner():
            return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)

        with StreamSession(
            reasoner(), partitioner=partitioner, backend=InlineBackend(simulated=False)
        ) as session:
            expected = [
                {frozenset(a) for a in session.evaluate_window(list(window)).answers}
                for window in window_policy.windows(stream)
            ]

        workers = spawn_local_workers(
            1,
            extra_arguments=[
                "--tls-cert", cert, "--tls-key", key, "--auth-token", TOKEN, "--restricted",
            ],
        )
        try:
            backend = TcpBackend(
                [worker.endpoint for worker in workers],
                ssl_context=client_ssl_context(cert),
                auth_token=TOKEN,
                codec="restricted",
            )
            with StreamSession(reasoner(), partitioner=partitioner, backend=backend) as session:
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(delta.window), delta=delta).answers}
                    for delta in window_policy.deltas(stream)
                ]
                assert session.fallbacks == 0
        finally:
            for worker in workers:
                worker.terminate()
        assert actual == expected

    def test_unauthenticated_client_against_hardened_daemon(self, tls_material):
        cert, key = tls_material
        workers = spawn_local_workers(
            1, extra_arguments=["--tls-cert", cert, "--tls-key", key, "--auth-token", TOKEN]
        )
        try:
            with pytest.raises(HandshakeError, match="auth"):
                WorkerClient(
                    workers[0].address,
                    choice_payload(),
                    ssl_context=client_ssl_context(cert),
                    attempts=1,
                )
        finally:
            for worker in workers:
                worker.terminate()

    def test_restricted_daemon_refuses_pickle_client(self, tls_material):
        cert, key = tls_material
        workers = spawn_local_workers(1, extra_arguments=["--restricted"])
        try:
            with pytest.raises(HandshakeError, match="restricted codec required"):
                WorkerClient(workers[0].address, choice_payload(), attempts=1)
            with WorkerClient(
                workers[0].address, encode_reasoner_spec(choice_reasoner()), codec="restricted"
            ) as client:
                result = client.submit_item(work_item(2))
            assert len(result.answers) == 4
        finally:
            for worker in workers:
                worker.terminate()
