"""Restricted-codec tests: negotiation, rejection paths, answer equivalence.

The restricted codec is the untrusted-peer dialect of the wire protocol
(``docs/deployment-security.md``): programs travel as text, facts as typed
JSON frames, results as packed symbol ids -- never a pickle byte in either
direction.  These tests pin the three promises that make it safe to expose:

* **negotiation** -- a restricted client refuses to silently fall back to
  pickle, and a ``--restricted`` server refuses pickle peers outright;
* **rejection paths** -- every refusal is a loud ``HandshakeError`` born
  from a ``REJECT`` frame, not a hang or a misparse;
* **equivalence** -- the answers that come back through the restricted
  dialect are exactly the pickle dialect's (and the inline oracle's),
  across the sync and asyncio clients.
"""

from __future__ import annotations

import asyncio
import pickle
import socket

import pytest

from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.aio import AsyncWorkerClient
from repro.streamrule.backends import InlineBackend, TcpBackend
from repro.streamrule.codec import (
    RestrictedResultDecoder,
    RestrictedServerCodec,
    RestrictedShipper,
    decode_fact,
    encode_fact,
    encode_reasoner_spec,
    reasoner_from_spec,
)
from repro.streamrule.errors import BackendError, HandshakeError, ProtocolError
from repro.streamrule.net import (
    MAGIC,
    PROTOCOL_VERSION,
    FrameKind,
    WorkerClient,
    recv_frame,
    send_frame,
)
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.work import WorkItem
from repro.streamrule.worker import WorkerServer
from repro.streaming.triples import Triple
from tests.conftest import make_atom

CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""


def choice_reasoner():
    return Reasoner(parse_program(CHOICE_PROGRAM), input_predicates=["item"])


def work_item(count=3, track=0, epoch=0):
    return WorkItem(facts=tuple(make_atom("item", index) for index in range(count)), track=track, epoch=epoch)


def traffic_stream(length, seed=59):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


# --------------------------------------------------------------------------- #
# Structural encodings
# --------------------------------------------------------------------------- #
class TestFactEncoding:
    def test_atom_round_trip(self):
        atom = make_atom("item", 3)
        assert decode_fact(encode_fact(atom)) == atom

    def test_nested_function_terms_round_trip(self):
        program = parse_program('p(f(g(a), "quoted", 7)).')
        atom = program.rules[0].head[0]
        assert decode_fact(encode_fact(atom)) == atom

    def test_triple_round_trip(self):
        triple = Triple("s1", "speed", 42, timestamp=17)
        assert decode_fact(encode_fact(triple)) == triple

    def test_untimestamped_triple_round_trip(self):
        triple = Triple("s1", "near", "s2")
        assert decode_fact(encode_fact(triple)) == triple

    def test_garbage_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_fact(["x", "no-such-tag"])


class TestReasonerSpec:
    def test_round_trip_preserves_semantics(self):
        original = choice_reasoner()
        rebuilt = reasoner_from_spec(encode_reasoner_spec(original))
        assert rebuilt.input_predicates == original.input_predicates
        assert rebuilt.output_predicates == original.output_predicates
        item = work_item(4)
        expected = {frozenset(answer) for answer in original.reason_item(item).answers}
        actual = {frozenset(answer) for answer in rebuilt.reason_item(item).answers}
        assert actual == expected

    def test_spec_is_pure_json(self):
        payload = encode_reasoner_spec(choice_reasoner())
        assert payload[:1] == b"{"  # starts as JSON, cannot be sniffed as pickle

    def test_pickle_payload_is_rejected(self):
        with pytest.raises(ProtocolError):
            reasoner_from_spec(pickle.dumps(choice_reasoner()))


class TestShipperDecoderPair:
    def test_full_then_delta_round_trip(self):
        shipper = RestrictedShipper(delta_shipping=True)
        codec = RestrictedServerCodec()
        first = work_item(5, epoch=0)
        second = WorkItem(
            facts=first.facts[1:] + (make_atom("item", 9),), track=0, epoch=1, incremental=True
        )
        for item in (first, second):
            for kind, payload in shipper.encode_frames(item):
                if kind is FrameKind.SYMBOLS:
                    codec.apply_symbols(payload)
                else:
                    decoded = codec.decode(kind, payload)
            assert decoded.facts == item.facts
            assert decoded.track == item.track and decoded.epoch == item.epoch
        # The steady-state frame really was a delta, not a resend.
        kinds = [kind for kind, _ in shipper.encode_frames(
            WorkItem(facts=second.facts, track=0, epoch=2, incremental=True)
        )]
        assert FrameKind.DELTA in kinds

    def test_result_round_trip(self):
        reasoner = choice_reasoner()
        result = reasoner.reason_item(work_item(3))
        codec = RestrictedServerCodec()
        decoded = RestrictedResultDecoder().decode(
            codec.encode_result(result), ("127.0.0.1", 0)
        )
        assert {frozenset(a) for a in decoded.answers} == {frozenset(a) for a in result.answers}
        assert decoded.metrics.window_size == result.metrics.window_size

    def test_error_decodes_as_backend_error(self):
        payload = RestrictedServerCodec.encode_error(ValueError("worker-side boom"))
        with pytest.raises(BackendError, match="worker-side boom"):
            RestrictedResultDecoder().decode(payload, ("127.0.0.1", 0))


# --------------------------------------------------------------------------- #
# Handshake negotiation
# --------------------------------------------------------------------------- #
class TestNegotiation:
    def test_restricted_client_against_default_server(self):
        """A pickle-capable server still speaks restricted when asked."""
        with WorkerServer(port=0) as server:
            client = WorkerClient(
                server.address, encode_reasoner_spec(choice_reasoner()), codec="restricted"
            )
            with client:
                assert client.capabilities.get("restricted_codec") is True
                result = client.submit_item(work_item(3))
            assert len(result.answers) == 8  # 2^3 picked/dropped choices

    def test_pickle_client_against_restricted_server_is_rejected(self):
        with WorkerServer(port=0, codec="restricted") as server:
            with pytest.raises(HandshakeError, match="restricted codec required"):
                WorkerClient(server.address, pickle.dumps(choice_reasoner()), codec="pickle")

    def test_restricted_client_against_refusing_server(self):
        """A server that declines the capability gets no pickle fallback."""
        with WorkerServer(port=0, capabilities={"restricted_codec": False}) as server:
            with pytest.raises(HandshakeError, match="did not accept the restricted codec"):
                WorkerClient(
                    server.address, encode_reasoner_spec(choice_reasoner()), codec="restricted"
                )

    def test_legacy_pickle_hello_against_restricted_server_is_rejected(self):
        """A restricted server refuses even to unpickle the HELLO frame."""
        with WorkerServer(port=0, codec="restricted") as server:
            with socket.create_connection(server.address, timeout=5.0) as raw:
                raw.sendall(MAGIC)
                send_frame(
                    raw,
                    FrameKind.HELLO,
                    pickle.dumps({"protocol": PROTOCOL_VERSION, "capabilities": {}}),
                )
                kind, payload = recv_frame(raw)
            assert kind is FrameKind.REJECT
            assert b"restricted codec required" in payload

    def test_restricted_client_work_never_ships_pickle(self):
        """Every frame a restricted client sends is JSON or packed ids."""
        with WorkerServer(port=0) as server:
            with WorkerClient(
                server.address, encode_reasoner_spec(choice_reasoner()), codec="restricted"
            ) as client:
                assert isinstance(client._shipper, RestrictedShipper)
                client.submit_item(work_item(4))
        # Inspect the same frame sequence on a fresh shipper (poking the
        # client's own shipper would desync its per-track delta state).
        shipper = RestrictedShipper(delta_shipping=True)
        for item in (work_item(4, epoch=0), work_item(5, epoch=1)):
            for _kind, payload in shipper.encode_frames(item):
                assert not payload.startswith(b"\x80")  # no pickle opcodes


# --------------------------------------------------------------------------- #
# Cross-codec answer equivalence over the backend matrix
# --------------------------------------------------------------------------- #
def inline_answers_per_window(window_policy, stream, partitioner):
    reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
    with StreamSession(reasoner, partitioner=partitioner, backend=InlineBackend(simulated=False)) as session:
        return [
            {frozenset(answer) for answer in session.evaluate_window(list(window)).answers}
            for window in window_policy.windows(stream)
        ]


class TestCrossCodecEquivalence:
    @pytest.mark.parametrize("codec", ["pickle", "restricted"])
    def test_tcp_backend_matches_inline(self, codec):
        stream = traffic_stream(120)
        window_policy = CountWindow(size=40, slide=20)
        partitioner = HashPartitioner(2)
        expected = inline_answers_per_window(window_policy, stream, partitioner)
        with WorkerServer(port=0) as server:
            backend = TcpBackend([f"{server.address[0]}:{server.address[1]}"], codec=codec)
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            with StreamSession(reasoner, partitioner=partitioner, backend=backend) as session:
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(delta.window), delta=delta).answers}
                    for delta in window_policy.deltas(stream)
                ]
                assert session.fallbacks == 0
        assert actual == expected

    def test_async_client_restricted_round_trip(self):
        async def run():
            with WorkerServer(port=0) as server:
                client = await AsyncWorkerClient.connect(
                    server.address, encode_reasoner_spec(choice_reasoner()), codec="restricted"
                )
                try:
                    assert client.capabilities.get("restricted_codec") is True
                    first = await client.submit_item(work_item(3, epoch=0))
                    second = await client.submit_item(
                        WorkItem(facts=work_item(3).facts, track=0, epoch=1, incremental=True)
                    )
                finally:
                    await client.close()
                return first, second

        first, second = asyncio.run(run())
        expected = {frozenset(a) for a in choice_reasoner().reason_item(work_item(3)).answers}
        assert {frozenset(a) for a in first.answers} == expected
        assert {frozenset(a) for a in second.answers} == expected

    def test_restricted_worker_errors_surface_without_pickle(self):
        """A worker-side failure crosses the restricted wire as BackendError."""
        bad = Reasoner(parse_program("q :- p."), input_predicates=["p"])
        with WorkerServer(port=0) as server:
            with WorkerClient(
                server.address, encode_reasoner_spec(bad), codec="restricted"
            ) as client:
                poisoned = WorkItem(facts=(object(),), track=0, epoch=0)  # unencodable fact
                with pytest.raises((BackendError, ProtocolError)):
                    client.submit_item(poisoned)
