"""Unit tests for the ExecutionBackend protocol and its four transports."""

from __future__ import annotations

import gc

import pytest

from repro.asp.syntax.parser import parse_program
from repro.streamrule.backends import (
    BackendError,
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
    backend_for_mode,
    ExecutionMode,
)
from repro.streamrule.placement import ConsistentHashPlacement, PinnedPlacement
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.work import WorkItem
from tests.conftest import make_atom

CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""


def choice_reasoner():
    return Reasoner(parse_program(CHOICE_PROGRAM), input_predicates=["item"])


def work_item(count=3, track=0):
    return WorkItem(facts=tuple(make_atom("item", index) for index in range(count)), track=track)


class TestProtocol:
    def test_capability_flags(self):
        assert InlineBackend().concurrent is True
        assert InlineBackend(simulated=False).concurrent is False
        assert InlineBackend().is_remote is False
        assert InlineBackend().measures_wall_clock is False
        assert ThreadPoolBackend().measures_wall_clock is True
        assert ProcessPoolBackend().is_remote is True
        assert LoopbackSocketBackend().is_remote is True
        for backend_class in (InlineBackend, ThreadPoolBackend, ProcessPoolBackend, LoopbackSocketBackend):
            assert backend_class.supports_delta is True

    def test_pipelined_capability_flags(self):
        # Inline evaluation resolves the future inside submit, so dispatching
        # ahead buys nothing; every pool/wire transport is pipelined.
        assert InlineBackend.pipelined is False
        for backend_class in (ThreadPoolBackend, ProcessPoolBackend, LoopbackSocketBackend):
            assert backend_class.pipelined is True

    def test_queue_depth_counts_unfinished_submissions(self):
        backend = InlineBackend()
        backend.start(choice_reasoner())
        assert backend.queue_depth() == 0
        backend.submit(work_item()).result()
        # Inline futures resolve during submit: depth never lingers.
        assert backend.queue_depth() == 0
        assert backend.queue_high_water >= 1

    def test_submit_before_start_raises(self):
        with pytest.raises(BackendError):
            InlineBackend().submit(work_item())

    def test_start_is_idempotent_per_reasoner(self):
        reasoner = choice_reasoner()
        backend = ThreadPoolBackend(max_workers=1)
        backend.start(reasoner)
        pool = backend._pool
        backend.start(reasoner)
        assert backend._pool is pool  # same binding: no restart
        backend.close()

    def test_rebinding_a_different_reasoner_restarts(self):
        backend = ThreadPoolBackend(max_workers=1)
        backend.start(choice_reasoner())
        first_pool = backend._pool
        other = choice_reasoner()
        backend.start(other)
        assert backend._pool is not first_pool
        assert backend.reasoner is other
        backend.close()

    def test_close_is_idempotent_and_start_reopens(self):
        backend = ThreadPoolBackend(max_workers=1)
        backend.close()  # never started: no-op
        reasoner = choice_reasoner()
        backend.start(reasoner)
        backend.close()
        backend.close()
        assert not backend.started
        backend.start(reasoner)
        result = backend.submit(work_item()).result()
        assert result.answers
        backend.close()

    def test_mode_mapping(self):
        assert isinstance(backend_for_mode(ExecutionMode.SERIAL), InlineBackend)
        assert backend_for_mode(ExecutionMode.SERIAL).concurrent is False
        assert isinstance(backend_for_mode(ExecutionMode.SIMULATED_PARALLEL), InlineBackend)
        assert backend_for_mode(ExecutionMode.SIMULATED_PARALLEL).concurrent is True
        assert isinstance(backend_for_mode(ExecutionMode.THREADS, 2), ThreadPoolBackend)
        assert isinstance(backend_for_mode(ExecutionMode.PROCESSES, 2), ProcessPoolBackend)


class TestLifecycleBackstop:
    def test_abandoned_thread_backend_is_finalized(self):
        backend = ThreadPoolBackend(max_workers=1)
        backend.start(choice_reasoner())
        pool = backend._pool
        del backend
        gc.collect()
        # The weakref.finalize backstop shut the executor down.
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    @pytest.mark.slow
    def test_abandoned_process_backend_is_finalized(self):
        backend = ProcessPoolBackend(max_workers=1)
        backend.start(choice_reasoner())
        pools = list(backend.pools)
        del backend
        gc.collect()
        with pytest.raises(RuntimeError):
            pools[0].submit(lambda: None)

    def test_abandoned_loopback_backend_is_finalized(self):
        backend = LoopbackSocketBackend(max_workers=1)
        backend.start(choice_reasoner())
        slots = list(backend._slots)
        del backend
        gc.collect()
        assert all(slot.client.fileno() == -1 for slot in slots)  # sockets closed
        assert all(not slot.thread.is_alive() for slot in slots)


class TestLoopbackTransport:
    def test_round_trip_matches_inline(self):
        reasoner = choice_reasoner()
        item = work_item()
        with LoopbackSocketBackend(max_workers=2) as loopback:
            loopback.start(reasoner)
            over_the_wire = loopback.submit(item).result()
        inline = InlineBackend()
        inline.start(reasoner)
        local = inline.submit(item).result()
        assert set(over_the_wire.answers) == set(local.answers)

    def test_worker_side_exception_propagates(self):
        reasoner = choice_reasoner()
        with LoopbackSocketBackend(max_workers=1) as loopback:
            loopback.start(reasoner)
            bad = WorkItem(facts=("not a triple",))  # type: ignore[arg-type]
            with pytest.raises(TypeError):
                loopback.submit(bad).result()
            # The connection survives a worker-side error.
            assert loopback.submit(work_item()).result().answers

    def test_per_slot_reasoners_are_isolated_copies(self):
        reasoner = choice_reasoner()
        with LoopbackSocketBackend(max_workers=2) as loopback:
            loopback.start(reasoner)
            results = [loopback.submit(work_item(track=track)).result() for track in (0, 1)]
        assert all(result.answers for result in results)


class TestPlacement:
    def test_pinned_placement_is_track_modulo(self):
        placement = PinnedPlacement()
        assert placement.slot(work_item(track=0), 4) == 0
        assert placement.slot(work_item(track=5), 4) == 1
        with pytest.raises(ValueError):
            placement.slot(work_item(), 0)

    def test_consistent_hash_is_content_based(self):
        placement = ConsistentHashPlacement()
        by_content = WorkItem(facts=(make_atom("speed", 1), make_atom("cars", 2)), track=0)
        same_content_other_track = WorkItem(facts=(make_atom("speed", 9),
                                                   make_atom("cars", 7)), track=3)
        # Same predicate mix -> same slot, regardless of the partition index.
        assert placement.slot(by_content, 8) == placement.slot(same_content_other_track, 8)

    def test_consistent_hash_spreads_signatures(self):
        placement = ConsistentHashPlacement()
        predicates = [f"predicate_{index}" for index in range(40)]
        slots = {
            placement.slot(WorkItem(facts=(make_atom(predicate, 1),)), 4)
            for predicate in predicates
        }
        assert len(slots) > 1  # not everything piles onto one slot

    def test_consistent_hash_resize_moves_few_keys(self):
        placement = ConsistentHashPlacement()
        items = [WorkItem(facts=(make_atom(f"predicate_{index}", 1),)) for index in range(200)]
        before = [placement.slot(item, 4) for item in items]
        after = [placement.slot(item, 5) for item in items]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        # Consistent hashing moves ~1/5 of the keys on 4 -> 5; plain modulo
        # would move ~4/5.  Allow generous slack for small-sample noise.
        assert moved / len(items) < 0.5

    def test_backend_uses_placement_for_slot_choice(self):
        reasoner = choice_reasoner()

        class EverythingToSlotOne(PinnedPlacement):
            def slot(self, item, slots):
                return 1 % slots

        with LoopbackSocketBackend(max_workers=2, placement=EverythingToSlotOne()) as loopback:
            loopback.start(reasoner)
            assert loopback.submit(work_item(track=0)).result().answers
