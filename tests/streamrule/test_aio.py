"""The asyncio facade: async/sync equivalence across schedules and backends.

The contract (see ``docs/async-serving.md``): :class:`AsyncStreamSession`
shares the dispatch/gather seam with the synchronous session, so whatever
the backend, whatever the in-flight bound (fixed or ``"adaptive"``), and
however ``await push`` calls interleave with ``results(wait=False)``
drains, the async facade emits exactly the solutions of the synchronous
inline path, in window order.  The hypothesis suite drives randomized
schedules over that surface; the backend matrix re-checks one canonical
schedule on every execution backend, including the asyncio-native TCP
backend against real worker daemons (``STREAMRULE_WORKERS``, or
self-spawned); the multiplexing test is the serving shape -- many sessions
interleaved on one loop over one shared backend.
"""

from __future__ import annotations

import asyncio
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.aio import AioTcpBackend, AsyncStreamSession
from repro.streamrule.backends import (
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    SharedMemoryBackend,
    ThreadPoolBackend,
)
from repro.streamrule.errors import BackendError
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.worker import spawn_local_workers
from tests.streamrule.conftest import worker_security_kwargs


def traffic_stream(length, seed=23):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def traffic_reasoner():
    return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)


def fingerprint(solution):
    return (
        solution.window_index,
        solution.window_size,
        {frozenset(answer) for answer in solution.answers},
        solution.solution_triples,
    )


STREAM_LENGTH = 60
WINDOW = CountWindow(size=20, slide=10, emit_partial=False)

_REFERENCE = None


def reference_solutions():
    """The synchronous answer trajectory (computed once per test run)."""
    global _REFERENCE
    if _REFERENCE is None:
        with StreamSession(
            traffic_reasoner(), window=WINDOW, backend=InlineBackend(simulated=False)
        ) as session:
            session.push(traffic_stream(STREAM_LENGTH))
            session.finish()
            _REFERENCE = [fingerprint(solution) for solution in session.results()]
        assert _REFERENCE
    return _REFERENCE


async def drive_session(
    session: AsyncStreamSession, stream, chunk_sizes=(STREAM_LENGTH,), drain_after=()
):
    """Push ``stream`` in chunks, optionally draining non-blockingly between."""
    collected = []
    cursor = 0
    for position, size in enumerate(chunk_sizes):
        await session.push(stream[cursor : cursor + size])
        cursor += size
        if position < len(drain_after) and drain_after[position]:
            async for solution in session.results(wait=False):
                collected.append(solution)
    await session.push(stream[cursor:])
    await session.finish()
    async for solution in session.results():
        collected.append(solution)
    return collected


class TestAsyncSynchronousParity:
    """``max_inflight=1`` under the async facade is still fully synchronous."""

    def test_push_gathers_before_returning(self):
        stream = traffic_stream(STREAM_LENGTH)

        async def scenario():
            collected = []
            async with AsyncStreamSession(
                traffic_reasoner(),
                window=WINDOW,
                backend=ThreadPoolBackend(max_workers=2),
                max_inflight=1,
            ) as session:
                for triple in stream:
                    count = await session.push([triple])
                    assert not session.session._inflight
                    drained = await session.results_list()
                    assert len(drained) == count
                    collected.extend(drained)
                await session.finish()
                collected.extend(await session.results_list())
                assert session.ingestion.inflight_high_water == 1
                assert session.ingestion.dispatched_ahead == 0
            return collected

        collected = asyncio.run(scenario())
        assert [fingerprint(solution) for solution in collected] == reference_solutions()


class TestAsyncInterleavings:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_any_async_schedule_matches_the_synchronous_path(self, data):
        """Random await/drain schedules, any bound: identical solutions."""
        max_inflight = data.draw(st.sampled_from([1, 2, 8, "adaptive"]), label="max_inflight")
        chunk_sizes = data.draw(
            st.lists(st.integers(min_value=1, max_value=25), min_size=1, max_size=8),
            label="chunk_sizes",
        )
        drain_after = data.draw(
            st.lists(st.booleans(), min_size=len(chunk_sizes), max_size=len(chunk_sizes)),
            label="drain_after",
        )
        stream = traffic_stream(STREAM_LENGTH)

        async def scenario():
            async with AsyncStreamSession(
                traffic_reasoner(),
                window=WINDOW,
                backend=ThreadPoolBackend(max_workers=2),
                max_inflight=max_inflight,
            ) as session:
                collected = await drive_session(session, stream, chunk_sizes, drain_after)
                if isinstance(max_inflight, int):
                    assert session.ingestion.inflight_high_water <= max_inflight
                else:
                    assert session.inflight_controller is not None
            return collected

        collected = asyncio.run(scenario())
        assert [fingerprint(solution) for solution in collected] == reference_solutions()


# --------------------------------------------------------------------------- #
# The backend matrix
# --------------------------------------------------------------------------- #
#: One canonical chunked schedule with interleaved non-blocking drains.
CANONICAL_CHUNKS = (7, 18, 25, 5)
CANONICAL_DRAINS = (False, True, True, False)

LIGHT_BACKENDS = {
    "inline": lambda: InlineBackend(simulated=False),
    "threads": lambda: ThreadPoolBackend(max_workers=2),
    "loopback": lambda: LoopbackSocketBackend(max_workers=2),
}

HEAVY_BACKENDS = {
    "processes": lambda: ProcessPoolBackend(max_workers=2),
    "shared-memory": lambda: SharedMemoryBackend(max_workers=2),
}


async def matrix_scenario(backend, max_inflight, owns_backend=True, reasoner=None, track_base=0):
    session = AsyncStreamSession(
        reasoner if reasoner is not None else traffic_reasoner(),
        window=WINDOW,
        backend=backend,
        max_inflight=max_inflight,
        owns_backend=owns_backend,
        track_base=track_base,
    )
    async with session:
        collected = await drive_session(
            session, traffic_stream(STREAM_LENGTH), CANONICAL_CHUNKS, CANONICAL_DRAINS
        )
    return [fingerprint(solution) for solution in collected]


class TestBackendMatrix:
    @pytest.mark.parametrize("backend_kind", sorted(LIGHT_BACKENDS), ids=str)
    @pytest.mark.parametrize("max_inflight", [2, "adaptive"], ids=["fixed", "adaptive"])
    def test_light_backends(self, backend_kind, max_inflight):
        backend = LIGHT_BACKENDS[backend_kind]()
        assert asyncio.run(matrix_scenario(backend, max_inflight)) == reference_solutions()

    @pytest.mark.slow
    @pytest.mark.parametrize("backend_kind", sorted(HEAVY_BACKENDS), ids=str)
    @pytest.mark.parametrize("max_inflight", [2, "adaptive"], ids=["fixed", "adaptive"])
    def test_heavy_backends(self, backend_kind, max_inflight):
        backend = HEAVY_BACKENDS[backend_kind]()
        assert asyncio.run(matrix_scenario(backend, max_inflight)) == reference_solutions()


@pytest.fixture(scope="module")
def worker_endpoints():
    """Two live worker daemons: from ``STREAMRULE_WORKERS`` or self-spawned."""
    configured = os.environ.get("STREAMRULE_WORKERS")
    if configured:
        yield [endpoint.strip() for endpoint in configured.split(",") if endpoint.strip()]
        return
    workers = spawn_local_workers(2)
    try:
        yield [worker.endpoint for worker in workers]
    finally:
        for worker in workers:
            worker.terminate()


class TestAioTcp:
    @pytest.mark.parametrize("max_inflight", [1, 2, 8, "adaptive"], ids=str)
    def test_aio_tcp_matches_the_synchronous_path(self, worker_endpoints, max_inflight):
        backend = AioTcpBackend(worker_endpoints, **worker_security_kwargs())
        result = asyncio.run(matrix_scenario(backend, max_inflight))
        assert result == reference_solutions()

    def test_items_actually_travel_the_wire(self, worker_endpoints):
        backend = AioTcpBackend(worker_endpoints, **worker_security_kwargs())

        async def scenario():
            async with AsyncStreamSession(
                traffic_reasoner(), window=WINDOW, backend=backend, max_inflight=4
            ) as session:
                await session.push(traffic_stream(STREAM_LENGTH))
                await session.finish()
                collected = await session.results_list()
                assert session.fallbacks == 0
                stats = backend.wire_statistics()
            return collected, stats

        collected, stats = asyncio.run(scenario())
        assert [fingerprint(solution) for solution in collected] == reference_solutions()
        assert stats["items_full"] + stats["items_delta"] >= len(collected)
        # The wire stats snapshot survives the (owned) backend's close.
        assert backend.wire_statistics() == stats

    def test_sync_start_is_rejected_with_guidance(self, worker_endpoints):
        backend = AioTcpBackend(worker_endpoints, **worker_security_kwargs())
        with pytest.raises(BackendError, match="astart"):
            backend.start(traffic_reasoner())

    def test_astart_is_idempotent_per_reasoner(self, worker_endpoints):
        backend = AioTcpBackend(worker_endpoints, **worker_security_kwargs())
        reasoner = traffic_reasoner()

        async def scenario():
            await backend.astart(reasoner)
            fleet = backend.fleet
            await backend.astart(reasoner)  # same reasoner: no rebuild
            assert backend.fleet is fleet
            await backend.aclose()
            assert backend.fleet is None
            await backend.aclose()  # idempotent

        asyncio.run(scenario())

    def test_dispatch_off_the_owning_loop_is_rejected(self, worker_endpoints):
        backend = AioTcpBackend(worker_endpoints, **worker_security_kwargs())
        reasoner = traffic_reasoner()
        asyncio.run(backend.astart(reasoner))
        # The loop that started the backend is gone; dispatching from
        # outside any loop (or another loop) must fail loudly, not hang.
        item_source = StreamSession(reasoner, backend=backend, owns_backend=False)
        with pytest.raises(BackendError, match="event loop"):
            item_source.evaluate_window(traffic_stream(10))
        backend.close()


class TestAsyncFleetResubmission:
    """Regression: a dead worker's in-flight items must be resubmitted to
    the survivors on the event loop, not dropped to the inline fallback
    (which runs solver work synchronously and blocks the loop)."""

    def test_dead_worker_items_reroute_to_survivors(self):
        workers = spawn_local_workers(2)
        try:
            backend = AioTcpBackend([worker.endpoint for worker in workers])

            async def scenario():
                async with AsyncStreamSession(
                    traffic_reasoner(), window=WINDOW, backend=backend, max_inflight=4
                ) as session:
                    stream = traffic_stream(STREAM_LENGTH)
                    half = len(stream) // 2
                    await session.push(stream[:half])
                    # Kill one worker while its connections are live; the
                    # remaining windows (and any in-flight retries) must be
                    # absorbed by the survivor.
                    workers[0].terminate()
                    await session.push(stream[half:])
                    await session.finish()
                    collected = await session.results_list()
                    reroutes = backend.fleet.reroutes
                    return collected, session.fallbacks, reroutes

            collected, fallbacks, reroutes = asyncio.run(scenario())
        finally:
            for worker in workers:
                worker.terminate()
        assert [fingerprint(solution) for solution in collected] == reference_solutions()
        assert fallbacks == 0  # the survivor answered; inline never ran
        assert reroutes >= 1  # the dead worker's slots were remapped


class TestManySessionsOneLoop:
    """The serving shape: many sessions multiplexed over one shared backend."""

    SESSIONS = 12

    def test_interleaved_sessions_share_a_backend(self):
        reasoner = traffic_reasoner()
        backend = ThreadPoolBackend(max_workers=2)
        stream = traffic_stream(STREAM_LENGTH)

        async def scenario():
            sessions = [
                AsyncStreamSession(
                    reasoner,
                    window=WINDOW,
                    backend=backend,
                    max_inflight="adaptive",
                    owns_backend=False,
                    track_base=1000 * index,
                )
                for index in range(self.SESSIONS)
            ]
            # Round-robin the same stream through every session: pushes of
            # different sessions interleave on the loop, all over one
            # backend and one reasoner.
            for start in range(0, len(stream), 10):
                chunk = stream[start : start + 10]
                await asyncio.gather(*(session.push(chunk) for session in sessions))
            await asyncio.gather(*(session.finish() for session in sessions))
            collected = []
            for session in sessions:
                collected.append([fingerprint(s) for s in await session.results_list()])
                await session.close()
            return collected

        try:
            per_session = asyncio.run(scenario())
        finally:
            backend.close()
        for result in per_session:
            assert result == reference_solutions()

    def test_sessions_get_disjoint_track_namespaces(self):
        reasoner = traffic_reasoner()
        backend = ThreadPoolBackend(max_workers=2)

        async def scenario():
            tracks = []
            for index in range(3):
                async with AsyncStreamSession(
                    reasoner,
                    window=WINDOW,
                    backend=backend,
                    owns_backend=False,
                    track_base=1000 * index,
                ) as session:
                    await session.push(traffic_stream(STREAM_LENGTH))
                    await session.finish()
                    await session.results_list()
                    tracks.append(1000 * index)
                    assert session.session.track_base == 1000 * index
            return tracks

        try:
            assert asyncio.run(scenario()) == [0, 1000, 2000]
        finally:
            backend.close()
