"""Cross-backend equivalence of ``TcpBackend`` over real worker daemons.

The acceptance matrix of the distributed tier: every window kind
(tumbling, sliding, hopping), with the delta path on and off, must answer
byte-for-byte like the serial inline reference -- evaluated on *real*
``python -m repro.streamrule.worker`` subprocesses over localhost TCP,
including while a worker is killed mid-stream.

The worker fleet comes from the ``STREAMRULE_WORKERS`` environment variable
(comma-separated ``host:port`` endpoints -- this is how the CI job points
the suite at daemons it launched itself) or, when unset, from daemons this
module spawns with :func:`repro.streamrule.worker.spawn_local_workers`.
"""

from __future__ import annotations

import os

import pytest

from repro.core.partitioner import DependencyPartitioner, HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.backends import InlineBackend, TcpBackend
from repro.streamrule.placement import ConsistentHashPlacement
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.worker import spawn_local_workers
from tests.streamrule.conftest import worker_security_kwargs

pytestmark = pytest.mark.slow  # spawns worker subprocesses

WINDOW_SCENARIOS = {
    "tumbling": CountWindow(size=60),
    "sliding": CountWindow(size=60, slide=20),
    "hopping": CountWindow(size=40, slide=60),
}


def traffic_stream(length, seed=47):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


@pytest.fixture(scope="module")
def worker_endpoints():
    """Two live worker daemons: from ``STREAMRULE_WORKERS`` or self-spawned."""
    configured = os.environ.get("STREAMRULE_WORKERS")
    if configured:
        yield [endpoint.strip() for endpoint in configured.split(",") if endpoint.strip()]
        return
    workers = spawn_local_workers(2)
    try:
        yield [worker.endpoint for worker in workers]
    finally:
        for worker in workers:
            worker.terminate()


def scratch_answers_per_window(window_policy, stream, partitioner):
    reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
    with StreamSession(reasoner, partitioner=partitioner, backend=InlineBackend(simulated=False)) as session:
        return [
            {frozenset(answer) for answer in session.evaluate_window(list(window)).answers}
            for window in window_policy.windows(stream)
        ]


class TestTcpEquivalenceMatrix:
    @pytest.mark.parametrize("window_kind", sorted(WINDOW_SCENARIOS), ids=str)
    @pytest.mark.parametrize("use_delta", [True, False], ids=["delta", "no-delta"])
    def test_backend_equivalence(self, worker_endpoints, window_kind, use_delta):
        stream = traffic_stream(200)
        window_policy = WINDOW_SCENARIOS[window_kind]
        partitioner = HashPartitioner(3)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        backend = TcpBackend(worker_endpoints, **worker_security_kwargs())
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with StreamSession(reasoner, partitioner=partitioner, backend=backend) as session:
            if use_delta:
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(delta.window), delta=delta).answers}
                    for delta in window_policy.deltas(stream)
                ]
            else:
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(window)).answers}
                    for window in window_policy.windows(stream)
                ]
            assert session.fallbacks == 0  # answered over the wire, not inline
        assert actual == expected

    def test_dependency_partitioner_with_content_placement(self, worker_endpoints, plan_p):
        stream = traffic_stream(180)
        window_policy = CountWindow(size=60, slide=30)
        partitioner = DependencyPartitioner(plan_p)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        backend = TcpBackend(worker_endpoints, placement=ConsistentHashPlacement(), **worker_security_kwargs())
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with StreamSession(reasoner, partitioner=partitioner, backend=backend) as session:
            actual = [
                {frozenset(a) for a in session.evaluate_window(list(delta.window), delta=delta).answers}
                for delta in window_policy.deltas(stream)
            ]
        assert actual == expected

    def test_push_facade_over_tcp(self, worker_endpoints):
        stream = traffic_stream(150)
        window_policy = CountWindow(size=50, slide=25)
        expected = scratch_answers_per_window(window_policy, stream, HashPartitioner(2))
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with StreamSession(
            reasoner,
            window=window_policy,
            partitioner=HashPartitioner(2),
            backend=TcpBackend(worker_endpoints, **worker_security_kwargs()),
        ) as session:
            session.push(stream)
            session.finish()
            actual = [{frozenset(a) for a in solution.answers} for solution in session.results()]
        assert actual == expected


class TestKillAWorker:
    """A worker subprocess SIGKILLed mid-stream: slots reroute, windows exact."""

    def test_killed_worker_subprocess_reroutes_without_losing_windows(self):
        stream = traffic_stream(220)
        window_policy = CountWindow(size=80, slide=20)
        partitioner = HashPartitioner(3)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        workers = spawn_local_workers(2)
        try:
            backend = TcpBackend(
                [worker.endpoint for worker in workers], reconnect_attempts=1, base_delay=0.01
            )
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            solutions = []
            with StreamSession(reasoner, partitioner=partitioner, backend=backend) as session:
                for index, delta in enumerate(window_policy.deltas(stream)):
                    if index == 2:
                        workers[0].kill()  # SIGKILL: no goodbye, no flush
                    result = session.evaluate_window(list(delta.window), delta=delta)
                    solutions.append({frozenset(answer) for answer in result.answers})
                assert len(solutions) == len(expected)  # no lost/duplicated windows
                assert solutions == expected
                assert backend.fleet.reroutes >= 1
                assert [str(e) for e in backend.fleet.alive_endpoints] == [workers[1].endpoint]
        finally:
            for worker in workers:
                worker.terminate()

    def test_killed_worker_with_pending_pipelined_dispatches_resubmits(self):
        """Regression: a reroute must also resubmit *pending* dispatches.

        Under pipelined ingestion a slot can have several windows in flight
        on its worker when that worker dies -- the one whose receive hit the
        error and the ones queued behind it.  Every one of them must be
        resubmitted on the rerouted slot (not lost, not duplicated, and not
        silently degraded to the inline fallback).
        """
        stream = traffic_stream(260)
        window_policy = CountWindow(size=60, slide=20)
        partitioner = HashPartitioner(3)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        workers = spawn_local_workers(2)
        try:
            backend = TcpBackend(
                [worker.endpoint for worker in workers], reconnect_attempts=1, base_delay=0.01
            )
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            with StreamSession(
                reasoner,
                window=window_policy,
                partitioner=partitioner,
                backend=backend,
                max_inflight=8,
            ) as session:
                # Fill the pipe: several windows dispatched, none gathered.
                session.push(stream[: len(stream) // 2])
                assert session.ingestion.inflight_high_water > 1
                workers[0].kill()  # SIGKILL with the victim's slot mid-burst
                session.push(stream[len(stream) // 2 :])
                session.finish()
                actual = [{frozenset(a) for a in solution.answers} for solution in session.results()]
                assert actual == expected  # no lost/duplicated/reordered windows
                assert session.fallbacks == 0  # resubmitted on the survivor, not inline
                assert backend.fleet.reroutes >= 1
                assert [str(e) for e in backend.fleet.alive_endpoints] == [workers[1].endpoint]
        finally:
            for worker in workers:
                worker.terminate()
