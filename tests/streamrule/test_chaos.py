"""Chaos, rejoin, and elasticity: the fleet under worker churn.

Three layers, cheapest first:

* :class:`TestFleetRegistry` -- the ANNOUNCE listener in isolation: a
  revived worker's announce flips its dead slot back to live, strangers
  and garbage are ignored, and the listener never unpickles anything.
* :class:`TestFleetAutoscaler` -- the backpressure-driven scaler against
  an injected spawner: streak thresholds, cooldown, the ``max_workers``
  ceiling, calm-streak retirement, and the ``IngestionStats`` mirror.
* :class:`TestChaos` -- the acceptance scenario (ISSUE 10): a live
  4-worker fleet loses half its daemons mid-stream, keeps answering
  correctly off the survivors (reroutes, zero inline fallbacks), then
  re-adopts the revived daemons on the *same* ports -- via both the
  heartbeat re-probe and the ANNOUNCE push path -- without the backend
  ever restarting.  CI runs this as the ``chaos`` job.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.partitioner import HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.autoscale import FleetAutoscaler
from repro.streamrule.backends import InlineBackend, TcpBackend
from repro.streamrule.fleet import FleetRegistry, WorkerEndpoint, WorkerFleet
from repro.streamrule.metrics import IngestionStats
from repro.streamrule.net import announce_endpoint
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.worker import (
    LocalWorkerProcess,
    WorkerServer,
    _await_listening_line,
    spawn_local_workers,
)


def traffic_reasoner():
    return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)


def traffic_stream(length, seed=67):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return list(generate_window(config))


def pickled_reasoner():
    import pickle

    return pickle.dumps(traffic_reasoner())


def spawn_worker_on(host, port, extra_arguments=()):
    """Spawn one worker daemon bound to a *specific* port (for revivals)."""
    source_root = str(Path(__file__).resolve().parents[2] / "src")
    environment = dict(os.environ)
    environment.pop("STREAMRULE_AUTH_TOKEN", None)  # private fleet, like spawn_local_workers
    python_path = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_root if not python_path else source_root + os.pathsep + python_path
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.streamrule.worker", "--listen", f"{host}:{port}", *extra_arguments],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    address = _await_listening_line(process, 30.0)
    return LocalWorkerProcess(process, address)


def wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# --------------------------------------------------------------------------- #
# ANNOUNCE / registry
# --------------------------------------------------------------------------- #
class TestFleetRegistry:
    def _fleet(self, server):
        fleet = WorkerFleet([f"{server.address[0]}:{server.address[1]}"])
        fleet.start(pickled_reasoner())
        return fleet

    def test_announce_readopts_a_dead_endpoint(self):
        with WorkerServer(port=0) as server:
            fleet = self._fleet(server)
            try:
                with FleetRegistry(fleet) as registry:
                    fleet._mark_dead(0)
                    assert fleet.dead_endpoints
                    assert announce_endpoint(registry.address, server.address)
                    assert wait_until(lambda: not fleet.dead_endpoints)
                    assert fleet.readoptions == 1
                    assert registry.announces == 1
            finally:
                fleet.close()

    def test_announce_for_a_live_endpoint_is_a_noop(self):
        with WorkerServer(port=0) as server:
            fleet = self._fleet(server)
            try:
                with FleetRegistry(fleet) as registry:
                    assert announce_endpoint(registry.address, server.address)
                    assert wait_until(lambda: registry.announces == 1)
                    assert fleet.readoptions == 0
            finally:
                fleet.close()

    def test_announce_from_a_stranger_is_ignored(self):
        """An endpoint the operator never configured cannot announce its
        way into the fleet."""
        with WorkerServer(port=0) as server:
            fleet = self._fleet(server)
            try:
                with FleetRegistry(fleet) as registry:
                    assert announce_endpoint(registry.address, ("127.0.0.1", 1))
                    assert wait_until(lambda: registry.announces == 1)
                    assert len(fleet.endpoints) == 1
                    assert fleet.adoptions == 0 and fleet.readoptions == 0
            finally:
                fleet.close()

    def test_garbage_and_pickle_frames_are_dropped(self):
        """The registry neither crashes on nor unpickles hostile bytes."""
        import pickle

        from repro.streamrule.net import MAGIC, FrameKind, send_frame

        with WorkerServer(port=0) as server:
            fleet = self._fleet(server)
            try:
                with FleetRegistry(fleet) as registry:
                    with socket.create_connection(registry.address, timeout=5.0) as raw:
                        raw.sendall(b"JUNKJUNK")
                    with socket.create_connection(registry.address, timeout=5.0) as raw:
                        raw.sendall(MAGIC)
                        send_frame(raw, FrameKind.ANNOUNCE, pickle.dumps({"host": "x", "port": 1}))
                    # Still alive and still counting real announces:
                    assert announce_endpoint(registry.address, server.address)
                    assert wait_until(lambda: registry.announces == 1)
            finally:
                fleet.close()


# --------------------------------------------------------------------------- #
# Autoscaler (injected spawner -- no subprocesses)
# --------------------------------------------------------------------------- #
class FakeWorker:
    def __init__(self, endpoint):
        self.endpoint = endpoint
        self.terminated = False

    def terminate(self, timeout=5.0):
        self.terminated = True


class FakeFleet:
    def __init__(self):
        self.endpoints = [WorkerEndpoint("127.0.0.1", 7001)]
        self.dead = []

    @property
    def dead_endpoints(self):
        return list(self.dead)

    def adopt_endpoint(self, endpoint, *, attempts=None):
        self.endpoints.append(WorkerEndpoint.parse(endpoint))
        return len(self.endpoints) - 1

    def retire_endpoint(self, index):
        del self.endpoints[index]


class FakeBackend:
    def __init__(self):
        self.fleet = FakeFleet()


class TestFleetAutoscaler:
    def make(self, **kwargs):
        backend = FakeBackend()
        spawned = []

        def spawner(count=1, **_ignored):
            workers = [FakeWorker(f"127.0.0.1:{7100 + len(spawned) + i}") for i in range(count)]
            spawned.extend(workers)
            return workers

        defaults = dict(
            max_workers=2,
            scale_up_stall_streak=3,
            scale_up_backoff_streak=2,
            scale_down_calm_streak=4,
            cooldown=2,
            spawner=spawner,
        )
        defaults.update(kwargs)
        scaler = FleetAutoscaler(backend, **defaults)
        return scaler, backend, spawned

    def test_stall_streak_triggers_scale_up_and_adoption(self):
        scaler, backend, spawned = self.make()
        for _ in range(2):
            scaler.observe(stalled=True)
        assert scaler.scale_ups == 0  # streak not yet at threshold
        scaler.observe(stalled=True)
        assert scaler.scale_ups == 1
        assert len(spawned) == 1
        assert WorkerEndpoint.parse(spawned[0].endpoint) in backend.fleet.endpoints

    def test_backoff_streak_triggers_scale_up(self):
        scaler, _backend, spawned = self.make()
        scaler.observe(stalled=False, aimd_backoffs=1)
        scaler.observe(stalled=False, aimd_backoffs=2)
        assert scaler.scale_ups == 1 and len(spawned) == 1

    def test_cooldown_and_max_workers_bound_scale_ups(self):
        scaler, _backend, spawned = self.make(cooldown=3)
        for _ in range(3):
            scaler.observe(stalled=True)
        assert scaler.scale_ups == 1
        # Stalls during cooldown do not spawn...
        for _ in range(3):
            scaler.observe(stalled=True)
        assert scaler.scale_ups == 1
        # ...but a sustained stall after cooldown spawns the second worker,
        for _ in range(3):
            scaler.observe(stalled=True)
        assert scaler.scale_ups == 2
        # and max_workers=2 is a hard ceiling from then on.
        for _ in range(12):
            scaler.observe(stalled=True)
        assert scaler.scale_ups == 2 and len(spawned) == 2

    def test_calm_streak_retires_youngest_spawned_worker_only(self):
        scaler, backend, spawned = self.make(cooldown=0, scale_down_calm_streak=4)
        for _ in range(3):
            scaler.observe(stalled=True)
        assert len(backend.fleet.endpoints) == 2
        for _ in range(4):
            scaler.observe(stalled=False)
        assert scaler.scale_downs == 1
        assert spawned[0].terminated
        assert len(backend.fleet.endpoints) == 1
        # A fully calm fleet never retires the operator's own workers.
        for _ in range(20):
            scaler.observe(stalled=False)
        assert scaler.scale_downs == 1
        assert backend.fleet.endpoints == [WorkerEndpoint("127.0.0.1", 7001)]

    def test_mirror_into_ingestion_stats(self):
        scaler, _backend, _spawned = self.make(cooldown=0)
        for _ in range(3):
            scaler.observe(stalled=True)
        ingestion = IngestionStats()
        scaler.mirror_into(ingestion)
        assert ingestion.autoscale_ups == 1
        assert ingestion.fleet_size == 2
        assert ingestion.as_dict()["autoscale_ups"] == 1.0

    def test_close_terminates_spawned_workers(self):
        scaler, _backend, spawned = self.make(cooldown=0)
        for _ in range(3):
            scaler.observe(stalled=True)
        scaler.close()
        assert all(worker.terminated for worker in spawned)
        scaler.close()  # idempotent

    def test_real_spawner_scales_a_live_fleet(self):
        """End to end with a real subprocess: a stall streak grows the
        fleet by one adopted daemon, and close() reaps it."""
        workers = spawn_local_workers(1)
        try:
            backend = TcpBackend([worker.endpoint for worker in workers])
            reasoner = traffic_reasoner()
            with StreamSession(
                reasoner, partitioner=HashPartitioner(2), backend=backend
            ) as session:
                with FleetAutoscaler(
                    backend, max_workers=1, scale_up_stall_streak=2, cooldown=0
                ) as scaler:
                    session.autoscaler = scaler
                    # First window forces the lazy backend start (fleet built).
                    assert session.evaluate_window(traffic_stream(40)).answers
                    before = len(backend.fleet.endpoints)
                    scaler.observe(stalled=True)
                    scaler.observe(stalled=True)
                    assert scaler.scale_ups == 1
                    assert len(backend.fleet.endpoints) == before + 1
                    # The widened fleet actually answers work.
                    result = session.evaluate_window(traffic_stream(40))
                    assert result.answers
                    assert session.fallbacks == 0
                    daemon = scaler.spawned_workers[0]
                assert not daemon.alive  # close() reaped it
        finally:
            for worker in workers:
                worker.terminate()


# --------------------------------------------------------------------------- #
# The acceptance scenario
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestChaos:
    def test_fleet_loses_and_regains_half_its_workers_mid_stream(self):
        stream = traffic_stream(240)
        window_policy = CountWindow(size=40, slide=20)
        partitioner = HashPartitioner(4)

        with StreamSession(
            traffic_reasoner(), partitioner=partitioner, backend=InlineBackend(simulated=False)
        ) as session:
            expected = [
                {frozenset(a) for a in session.evaluate_window(list(window)).answers}
                for window in window_policy.windows(stream)
            ]

        workers = spawn_local_workers(4)
        revived = []
        try:
            backend = TcpBackend(
                [worker.endpoint for worker in workers],
                heartbeat_interval=0.2,
                registry=True,
            )
            with StreamSession(
                traffic_reasoner(), partitioner=partitioner, backend=backend
            ) as session:
                deltas = list(window_policy.deltas(stream))
                third = len(deltas) // 3
                actual = [
                    {frozenset(a) for a in session.evaluate_window(list(d.window), delta=d).answers}
                    for d in deltas[:third]
                ]
                fleet = backend.fleet

                # --- lose half the fleet, keep streaming off the survivors
                for worker in workers[:2]:
                    worker.terminate()
                actual += [
                    {frozenset(a) for a in session.evaluate_window(list(d.window), delta=d).answers}
                    for d in deltas[third : 2 * third]
                ]
                assert fleet.reroutes > 0
                assert wait_until(lambda: len(fleet.dead_endpoints) == 2, timeout=10.0)

                # --- revive on the SAME ports: one worker rejoins via the
                # ANNOUNCE push path, the other via the heartbeat re-probe.
                registry = backend.registry
                assert registry is not None
                host, port = registry.address
                revived.append(
                    spawn_worker_on(*workers[0].address, extra_arguments=[
                        "--announce", f"{host}:{port}", "--announce-interval", "0.2",
                    ])
                )
                revived.append(spawn_worker_on(*workers[1].address))
                assert wait_until(lambda: not fleet.dead_endpoints, timeout=20.0)
                assert fleet.readoptions >= 2
                assert registry.announces >= 1

                # --- the regained workers serve the rest of the stream
                actual += [
                    {frozenset(a) for a in session.evaluate_window(list(d.window), delta=d).answers}
                    for d in deltas[2 * third :]
                ]
                assert session.fallbacks == 0  # inline never ran
                assert backend.fleet is fleet  # the backend never restarted
                stats = backend.wire_statistics()
            # Every window, across the kill and the rejoin, answered exactly
            # as the uninterrupted inline run: nothing lost, nothing doubled.
            assert len(actual) == len(expected)
            assert actual == expected
            assert stats["reroutes"] > 0
            assert stats["readoptions"] >= 2
        finally:
            for worker in workers + revived:
                worker.terminate()
