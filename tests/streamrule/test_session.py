"""Tests for the StreamSession facade: push/results, windowing, fallback."""

from __future__ import annotations

import pytest

from repro.asp.grounding.grounder import GroundingCache
from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import DependencyPartitioner, HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, TimeWindow
from repro.streamrule.backends import (
    BackendConnectionError,
    InlineBackend,
    LoopbackSocketBackend,
    ThreadPoolBackend,
)
from repro.streamrule.placement import ConsistentHashPlacement
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from tests.conftest import make_atom


def traffic_stream(length, seed=31):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def traffic_reasoner(cache=False):
    return Reasoner(
        traffic_program(),
        INPUT_PREDICATES,
        EVENT_PREDICATES,
        grounding_cache=GroundingCache() if cache else None,
    )


def answer_sets(solution):
    return {frozenset(answer) for answer in solution.answers}


class TestPushResults:
    def test_push_evaluates_completed_count_windows(self):
        stream = traffic_stream(100)
        with StreamSession(traffic_reasoner(), window=CountWindow(size=40, emit_partial=False)) as session:
            assert session.push(stream[:30]) == 0  # window not yet full
            assert session.push(stream[30:85]) == 2  # windows 0 and 1 complete
            solutions = list(session.results())
        assert [solution.window_index for solution in solutions] == [0, 1]
        assert list(session.results()) == []  # results() drains

    def test_push_matches_bulk_process(self):
        stream = traffic_stream(120)
        window = CountWindow(size=40)
        with StreamSession(traffic_reasoner(), window=window) as pushed_session:
            for triple in stream:
                pushed_session.push([triple])
            pushed_session.finish()
            pushed = list(pushed_session.results())
        with StreamSession(traffic_reasoner(), window=window) as bulk_session:
            bulk = list(bulk_session.process(stream))
        assert [answer_sets(solution) for solution in pushed] == [answer_sets(solution) for solution in bulk]

    def test_finish_emits_partial_tail(self):
        stream = traffic_stream(50)
        with StreamSession(traffic_reasoner(), window=CountWindow(size=40)) as session:
            session.push(stream)
            assert len(list(session.results())) == 1  # only the full window
            assert session.finish() == 1  # the 10-item tail
            [tail] = list(session.results())
        assert tail.window_size == 10

    def test_windowless_session_evaluates_each_push(self):
        with StreamSession(traffic_reasoner()) as session:
            session.push(traffic_stream(30))
            session.push(traffic_stream(20, seed=77))
            solutions = list(session.results())
        assert [solution.window_size for solution in solutions] == [30, 20]
        assert [solution.window_index for solution in solutions] == [0, 1]

    def test_time_windows_are_deferred_to_finish(self):
        triples = [Triple("s", "average_speed", index, timestamp=float(index)) for index in range(10)]
        with StreamSession(traffic_reasoner(), window=TimeWindow(duration=4.0)) as session:
            assert session.push(triples) == 0  # time layout needs the whole stream
            assert list(session.results()) == []
            assert session.finish() == 3
            assert len(list(session.results())) == 3

    def test_sliding_push_repairs_incrementally(self):
        stream = traffic_stream(160)
        cache = GroundingCache()
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=cache)
        with StreamSession(reasoner, window=CountWindow(size=80, slide=20, emit_partial=False)) as session:
            session.push(stream)
            solutions = list(session.results())
        assert len(solutions) >= 4
        assert sum(solution.metrics.delta_repairs for solution in solutions) > 0

    def test_solutions_match_unwindowed_reference(self):
        stream = traffic_stream(80)
        window = CountWindow(size=40)
        reference = traffic_reasoner()
        expected = [
            {frozenset(answer) for answer in reference.reason(list(chunk)).answers}
            for chunk in window.windows(stream)
        ]
        with StreamSession(traffic_reasoner(), window=window) as session:
            session.push(stream)
            session.finish()
            actual = [answer_sets(solution) for solution in session.results()]
        assert actual == expected


class TestSessionConfiguration:
    def test_program_or_reasoner_constructor(self):
        window = traffic_stream(40)
        by_program = StreamSession(
            traffic_program(), input_predicates=INPUT_PREDICATES, output_predicates=EVENT_PREDICATES
        )
        by_reasoner = StreamSession(traffic_reasoner())
        first = by_program.evaluate_window(window)
        second = by_reasoner.evaluate_window(window)
        assert {frozenset(a) for a in first.answers} == {frozenset(a) for a in second.answers}

    def test_reasoner_with_predicate_arguments_rejected(self):
        with pytest.raises(ValueError):
            StreamSession(traffic_reasoner(), input_predicates=INPUT_PREDICATES)

    def test_placement_overrides_slot_owning_backend(self):
        placement = ConsistentHashPlacement()
        backend = LoopbackSocketBackend(max_workers=1)
        session = StreamSession(traffic_reasoner(), backend=backend, placement=placement)
        assert backend.placement is placement
        session.close()

    def test_placement_on_slotless_backend_rejected(self):
        # InlineBackend/ThreadPoolBackend never consult a placement; a
        # silently ignored strategy would fake content-based routing.
        with pytest.raises(ValueError):
            StreamSession(traffic_reasoner(), placement=ConsistentHashPlacement())
        with pytest.raises(ValueError):
            StreamSession(
                traffic_reasoner(), backend=ThreadPoolBackend(max_workers=1), placement=ConsistentHashPlacement()
            )

    def test_context_manager_closes_backend(self):
        backend = ThreadPoolBackend(max_workers=1)
        with StreamSession(traffic_reasoner(), backend=backend) as session:
            session.evaluate_window(traffic_stream(20))
            assert backend.started
        assert not backend.started

    def test_epochs_are_monotonic(self):
        session = StreamSession(traffic_reasoner())
        session.evaluate_window(traffic_stream(10))
        session.evaluate_window(traffic_stream(10))
        assert session._epoch == 2


class TestInlineFallback:
    CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""

    def choice_session(self, **kwargs):
        reasoner = Reasoner(parse_program(self.CHOICE_PROGRAM), input_predicates=["item"])
        return StreamSession(
            reasoner,
            partitioner=HashPartitioner(2),
            backend=LoopbackSocketBackend(max_workers=1),
            **kwargs,
        )

    def window(self):
        return [make_atom("item", index) for index in range(4)]

    def test_dropped_connection_falls_back_inline(self):
        with self.choice_session() as session:
            healthy = session.evaluate_window(self.window())
            assert session.fallbacks == 0
            session.backend.drop_connection(0)
            degraded = session.evaluate_window(self.window())
            assert session.fallbacks > 0
        assert {frozenset(a) for a in healthy.answers} == {frozenset(a) for a in degraded.answers}

    def test_fallback_disabled_raises(self):
        with self.choice_session(inline_fallback=False) as session:
            session.evaluate_window(self.window())
            session.backend.drop_connection(0)
            with pytest.raises(BackendConnectionError):
                session.evaluate_window(self.window())


class TestParallelEquivalence:
    def test_dependency_partitioned_session_matches_reasoner(self, plan_p, motivating_window):
        reasoner = traffic_reasoner()
        reference = {frozenset(a) for a in reasoner.reason(motivating_window).answers}
        with StreamSession(
            reasoner, partitioner=DependencyPartitioner(plan_p), backend=InlineBackend()
        ) as session:
            result = session.evaluate_window(motivating_window)
        assert {frozenset(a) for a in result.answers} == reference
