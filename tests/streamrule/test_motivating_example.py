"""The paper's motivating example (Section II-A), end to end.

The window W = {average_speed(newcastle,10), car_number(newcastle,55),
traffic_light(newcastle), car_in_smoke(car1,high), car_speed(car1,0),
car_location(car1,dangan)} must produce the event car_fire(dangan) and the
notification for dangan -- and *not* traffic_jam(newcastle), because the
traffic light explains the slow, crowded traffic.

The paper shows that the specific bad random split W1/W2 produces the wrong
event; the dependency-aware split never does.
"""


from repro.core.accuracy import accuracy_of_answer
from repro.core.combining import combine_answer_sets
from repro.core.partitioner import DependencyPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.reasoner import Reasoner
from tests.conftest import make_atom


def paper_bad_split():
    """The exact W1 / W2 split given in Section II-A."""
    w1 = [
        make_atom("average_speed", "newcastle", 10),
        make_atom("car_number", "newcastle", 55),
        make_atom("car_in_smoke", "car1", "high"),
    ]
    w2 = [
        make_atom("traffic_light", "newcastle"),
        make_atom("car_speed", "car1", 0),
        make_atom("car_location", "car1", "dangan"),
    ]
    return w1, w2


class TestMotivatingExample:
    def test_reference_answer(self, event_reasoner_p, motivating_window):
        [answer] = event_reasoner_p.reason(motivating_window).answers
        assert {str(atom) for atom in answer} == {"car_fire(dangan)", "give_notification(dangan)"}

    def test_papers_bad_random_split_produces_the_wrong_event(self, event_reasoner_p):
        w1, w2 = paper_bad_split()
        answers_1 = event_reasoner_p.reason(w1).answers
        answers_2 = event_reasoner_p.reason(w2).answers
        combined = combine_answer_sets([answers_1, answers_2])
        atoms = {str(atom) for answer in combined for atom in answer}
        # The spurious jam and notification for newcastle appear...
        assert "traffic_jam(newcastle)" in atoms
        assert "give_notification(newcastle)" in atoms
        # ...and the true car fire event is lost (its three atoms were split).
        assert "car_fire(dangan)" not in atoms

    def test_bad_split_accuracy_is_zero(self, event_reasoner_p, motivating_window):
        w1, w2 = paper_bad_split()
        reference = event_reasoner_p.reason(motivating_window).answers
        combined = combine_answer_sets(
            [event_reasoner_p.reason(w1).answers, event_reasoner_p.reason(w2).answers]
        )
        # None of the correct atoms are recovered by the bad split.
        assert accuracy_of_answer(combined[0], reference) == 0.0

    def test_dependency_partitioning_gives_the_correct_answer(
        self, event_reasoner_p, plan_p, motivating_window
    ):
        parallel = ParallelReasoner(event_reasoner_p, DependencyPartitioner(plan_p))
        [answer] = parallel.reason(motivating_window).answers
        assert {str(atom) for atom in answer} == {"car_fire(dangan)", "give_notification(dangan)"}

    def test_dependency_partitioning_on_p_prime_also_correct(
        self, program_p_prime, plan_p_prime, motivating_window
    ):
        reasoner = Reasoner(program_p_prime, INPUT_PREDICATES, EVENT_PREDICATES)
        reference = reasoner.reason(motivating_window).answers
        parallel = ParallelReasoner(reasoner, DependencyPartitioner(plan_p_prime))
        [answer] = parallel.reason(motivating_window).answers
        assert accuracy_of_answer(answer, reference) == 1.0
