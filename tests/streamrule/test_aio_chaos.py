"""Chaos: 200 async sessions on one loop survive a mid-stream worker kill.

The serving-layer fault story, end to end: one event loop multiplexes 200
:class:`AsyncStreamSession` instances over a single shared
:class:`AioTcpBackend` on a two-worker fleet; one worker is hard-killed
with a full wave of windows on the wire.  The async fleet resubmits every
in-flight window of the dead connection on the survivor (``aio.py``
module docstring -- same discipline as the sync fleet), so the inline
fallback -- which would run solver work synchronously on the event loop
-- never fires while any worker lives.  Asserted:

* no session loses, duplicates, or reorders a window -- every one of the
  200 emits exactly the reference solution trajectory;
* zero inline fallbacks (the kill was absorbed *on the wire*), with the
  fleet rerouting the dead worker's slots onto the lone survivor;
* the AIMD controllers keep increasing on clean gathers and no controller
  ever leaves the [floor, ceiling] band.

The fleet is always self-spawned (never ``STREAMRULE_WORKERS``): this test
kills one of its daemons, so it must own them.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.aio import AioTcpBackend, AsyncStreamSession
from repro.streamrule.backends import InlineBackend
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.worker import spawn_local_workers

SESSIONS = 200
WINDOW = CountWindow(size=10, slide=10)
STREAM_LENGTH = 30  # three windows per session
FIRST_WAVE = 10  # one window in flight when the worker dies


def traffic_stream():
    config = SyntheticStreamConfig(
        window_size=STREAM_LENGTH, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=23
    )
    return generate_window(config)


def traffic_reasoner():
    return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)


def fingerprint(solution):
    return (
        solution.window_index,
        solution.window_size,
        {frozenset(answer) for answer in solution.answers},
        solution.solution_triples,
    )


def reference_solutions(stream):
    with StreamSession(
        traffic_reasoner(), window=WINDOW, backend=InlineBackend(simulated=False)
    ) as session:
        session.push(stream)
        session.finish()
        reference = [fingerprint(solution) for solution in session.results()]
    assert len(reference) == 3
    return reference


@pytest.mark.slow
def test_worker_kill_mid_stream_loses_nothing():
    stream = traffic_stream()
    reference = reference_solutions(stream)
    workers = spawn_local_workers(2)
    try:
        endpoints = [worker.endpoint for worker in workers]

        async def scenario():
            reasoner = traffic_reasoner()
            backend = AioTcpBackend(endpoints)
            await backend.astart(reasoner)
            sessions = [
                AsyncStreamSession(
                    reasoner,
                    window=WINDOW,
                    backend=backend,
                    max_inflight="adaptive",
                    owns_backend=False,
                    track_base=100 * index,
                )
                for index in range(SESSIONS)
            ]
            try:
                # Wave 1: every session dispatches one window; nothing is
                # gathered (the adaptive bound starts above 1), so 200
                # windows sit in flight across both workers.
                await asyncio.gather(
                    *(session.push(stream[:FIRST_WAVE]) for session in sessions)
                )
                # Two loop passes put the dispatch tasks' frames on the
                # wire; the roundtrips cannot complete that fast, so the
                # kill lands while wave 1 is genuinely in flight.
                await asyncio.sleep(0)
                await asyncio.sleep(0)
                workers[0].kill()
                # Waves 2-3 + drain: the survivor absorbs the rest.
                await asyncio.gather(
                    *(session.push(stream[FIRST_WAVE:]) for session in sessions)
                )
                await asyncio.gather(*(session.finish() for session in sessions))
                per_session = []
                for session in sessions:
                    solutions = await session.results_list()
                    per_session.append(
                        (
                            [fingerprint(solution) for solution in solutions],
                            session.fallbacks,
                            session.inflight_controller,
                        )
                    )
                stats = backend.wire_statistics()
            finally:
                for session in sessions:
                    await session.close(drain=False)
                await backend.aclose()
            return per_session, stats

        per_session, stats = asyncio.run(scenario())
    finally:
        for worker in workers:
            worker.terminate()

    # No session lost, duplicated, or reordered a window.
    for solutions, _fallbacks, _controller in per_session:
        assert solutions == reference

    # The kill was absorbed on the wire, not dodged and not degraded:
    # every in-flight window of the dead worker was resubmitted on the
    # survivor (regression guard for the old fall-back-inline behaviour,
    # which blocked the event loop on solver work).
    total_fallbacks = sum(fallbacks for _s, fallbacks, _c in per_session)
    assert total_fallbacks == 0
    assert stats["alive_workers"] == 1.0
    assert stats["reroutes"] > 0

    # AIMD: resubmission means the kill produces no failed gathers, so
    # backoffs are stall-driven only (possibly zero on a fast machine);
    # clean gathers keep increasing targets and every target stays
    # inside its band.
    total_increases = sum(controller.increases for _s, _f, controller in per_session)
    assert total_increases > 0
    for _solutions, _fallbacks, controller in per_session:
        assert controller.floor <= controller.target <= controller.ceiling
