"""Cross-mode equivalence: every execution mode returns the same answer sets.

The execution modes (and the pluggable backends they map to) differ only in
*where* the partition reasoners run (inline, thread pool, process pool,
loopback socket) and in how latency is reported; the answer sets must be
identical.  This suite locks that contract in over a matrix of programs:

* the paper's stratified traffic programs ``P`` and ``P'``,
* a non-stratified program with multiple answer sets per partition,
* a program where one partition is inconsistent (skipped by combining),

plus the empty-window and single-partition edge cases.
"""

from __future__ import annotations

import warnings

import pytest

from repro.asp.grounding.grounder import GroundingCache
from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import DependencyPartitioner, HashPartitioner, Partitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES
from repro.streamrule.backends import (
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.streamrule.parallel import ExecutionMode, ParallelReasoner
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from tests.conftest import make_atom

ALL_MODES = (
    ExecutionMode.SERIAL,
    ExecutionMode.SIMULATED_PARALLEL,
    ExecutionMode.THREADS,
    ExecutionMode.PROCESSES,
)

#: The direct-backend rows of the equivalence matrix (label -> factory);
#: evaluated through StreamSession, the non-deprecated path.
BACKEND_FACTORIES = {
    "backend:inline": lambda workers: InlineBackend(),
    "backend:inline-serial": lambda workers: InlineBackend(simulated=False),
    "backend:threads": lambda workers: ThreadPoolBackend(max_workers=workers),
    "backend:processes": lambda workers: ProcessPoolBackend(max_workers=workers),
    "backend:loopback-socket": lambda workers: LoopbackSocketBackend(max_workers=workers),
}


class PredicateSplit(Partitioner):
    """Deterministic test partitioner: an explicit predicate -> partition map.

    Unlike :class:`HashPartitioner` (whose layout depends on Python's
    randomized string hashing) this produces the same split in every run,
    which the inconsistent-partition scenario relies on.
    """

    def __init__(self, groups):
        self._groups = [tuple(group) for group in groups]

    @property
    def partition_count(self):
        return len(self._groups)

    def partition(self, window):
        partitions = [[] for _ in self._groups]
        for atom in window:
            for index, group in enumerate(self._groups):
                if atom.predicate in group:
                    partitions[index].append(atom)
        return partitions


def answers_by_mode(reasoner, partitioner, window, max_workers=2, max_combinations=None):
    """Evaluate ``window`` under every mode *and* backend; return {key: answers}."""
    collected = {}
    for mode in ALL_MODES:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with ParallelReasoner(
                reasoner, partitioner, mode=mode, max_workers=max_workers, max_combinations=max_combinations
            ) as parallel:
                result = parallel.reason(window)
        collected[mode] = {frozenset(answer) for answer in result.answers}
    for label, factory in BACKEND_FACTORIES.items():
        with StreamSession(
            reasoner, partitioner=partitioner, backend=factory(max_workers), max_combinations=max_combinations
        ) as session:
            result = session.evaluate_window(window)
        collected[label] = {frozenset(answer) for answer in result.answers}
    return collected


def assert_all_modes_equal(collected):
    reference = collected[ExecutionMode.SERIAL]
    for mode, answers in collected.items():
        assert answers == reference, f"{mode} diverged from SERIAL"


# --------------------------------------------------------------------------- #
# The paper's stratified traffic programs
# --------------------------------------------------------------------------- #
class TestTrafficPrograms:
    pytestmark = pytest.mark.slow  # every test spins up a process pool

    def test_program_p_motivating_window(self, event_reasoner_p, plan_p, motivating_window):
        collected = answers_by_mode(event_reasoner_p, DependencyPartitioner(plan_p), motivating_window)
        assert_all_modes_equal(collected)
        # The motivating example has exactly one answer: the dangan car fire.
        [answer] = collected[ExecutionMode.PROCESSES]
        assert {str(atom) for atom in answer} == {"car_fire(dangan)", "give_notification(dangan)"}

    def test_program_p_prime_motivating_window(self, program_p_prime, plan_p_prime, motivating_window):
        reasoner = Reasoner(program_p_prime, INPUT_PREDICATES, EVENT_PREDICATES)
        collected = answers_by_mode(reasoner, DependencyPartitioner(plan_p_prime), motivating_window)
        assert_all_modes_equal(collected)
        assert collected[ExecutionMode.SERIAL]

    def test_program_p_synthetic_window(self, event_reasoner_p, plan_p, small_traffic_window):
        collected = answers_by_mode(event_reasoner_p, DependencyPartitioner(plan_p), small_traffic_window)
        assert_all_modes_equal(collected)

    def test_program_p_hash_partitioning(self, event_reasoner_p, small_traffic_window):
        # Hash partitioning may split joins (lower accuracy than dependency
        # partitioning) -- but whatever it answers must not depend on the mode.
        collected = answers_by_mode(event_reasoner_p, HashPartitioner(3), small_traffic_window)
        assert_all_modes_equal(collected)


# --------------------------------------------------------------------------- #
# Multiple answer sets and inconsistent partitions
# --------------------------------------------------------------------------- #
CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""

CONSTRAINED_PROGRAM = """\
good(X) :- item(X).
:- poison(X).
"""


class TestNonStratifiedPrograms:
    pytestmark = pytest.mark.slow  # every test spins up a process pool

    def test_multiple_answer_sets_per_partition(self):
        reasoner = Reasoner(parse_program(CHOICE_PROGRAM), input_predicates=["item"])
        window = [make_atom("item", index) for index in range(3)]
        collected = answers_by_mode(reasoner, HashPartitioner(2), window)
        assert_all_modes_equal(collected)
        # Three two-way choices -> the combining handler unions picks from
        # both partitions; there must be more than one combined answer.
        assert len(collected[ExecutionMode.SERIAL]) > 1

    def test_inconsistent_partition_is_skipped_in_every_mode(self):
        reasoner = Reasoner(parse_program(CONSTRAINED_PROGRAM), input_predicates=["item", "poison"])
        window = [make_atom("item", index) for index in range(4)] + [make_atom("poison", 99)]
        # The poison partition is unsatisfiable; the item partition survives.
        partitioner = PredicateSplit([("item",), ("poison",)])
        collected = answers_by_mode(reasoner, partitioner, window)
        assert_all_modes_equal(collected)
        [answer] = collected[ExecutionMode.SERIAL]
        assert {str(atom) for atom in answer} == {f"good({index})" for index in range(4)}

    def test_fully_inconsistent_window_unsatisfiable_in_every_mode(self):
        reasoner = Reasoner(parse_program(CONSTRAINED_PROGRAM), input_predicates=["item", "poison"])
        window = [make_atom("poison", index) for index in range(4)]
        collected = answers_by_mode(reasoner, HashPartitioner(2), window)
        assert_all_modes_equal(collected)
        assert collected[ExecutionMode.SERIAL] == set()


# --------------------------------------------------------------------------- #
# Edge cases
# --------------------------------------------------------------------------- #
class TestEdgeCases:
    pytestmark = pytest.mark.slow  # every test spins up a process pool

    def test_empty_window(self, event_reasoner_p, plan_p):
        collected = answers_by_mode(event_reasoner_p, DependencyPartitioner(plan_p), [])
        assert_all_modes_equal(collected)
        # An empty window degenerates to the program's own (single, eventless)
        # answer set -- the same thing the unpartitioned reasoner R returns.
        reference = {frozenset(a) for a in event_reasoner_p.reason([]).answers}
        assert collected[ExecutionMode.SERIAL] == reference

    def test_single_partition(self, event_reasoner_p, motivating_window):
        collected = answers_by_mode(event_reasoner_p, HashPartitioner(1), motivating_window)
        assert_all_modes_equal(collected)
        # One partition means PR degenerates to R exactly.
        reference = {frozenset(a) for a in event_reasoner_p.reason(motivating_window).answers}
        assert collected[ExecutionMode.SERIAL] == reference

    def test_empty_partitions_are_filtered(self, event_reasoner_p, motivating_window):
        # 6 atoms into 12 hash buckets: some partitions are necessarily empty
        # and must not be dispatched to the reasoner pool.
        partitioner = HashPartitioner(12)
        non_empty = sum(1 for part in partitioner.partition(motivating_window) if part)
        assert non_empty < 12
        result = ParallelReasoner(event_reasoner_p, partitioner).reason(motivating_window)
        assert len(result.partition_results) == non_empty
        # The metrics still record the partitioner's full layout.
        assert len(result.metrics.partition_sizes) == 12

    def test_processes_pool_persists_across_windows(self, program_p, plan_p, motivating_window):
        # A *cached* reasoner: each worker inherits its own fresh cache, so
        # the repeated window must be served from worker-side cache hits.
        reasoner = Reasoner(
            program_p, INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
        )
        with ParallelReasoner(
            reasoner, DependencyPartitioner(plan_p), mode=ExecutionMode.PROCESSES, max_workers=1
        ) as parallel:
            first = parallel.reason(motivating_window)
            pools = parallel._process_pools
            assert pools is not None and len(pools) == 1
            second = parallel.reason(motivating_window)
            assert parallel._process_pools is pools  # reused, not rebuilt
            assert {frozenset(a) for a in first.answers} == {frozenset(a) for a in second.answers}
            # The single worker's grounding cache serves the repeated window.
            assert second.metrics.cache_hits == len(second.partition_results)
        assert parallel._process_pools is None  # context exit shut the pools down

    def test_uncached_reasoner_stays_uncached_in_workers(self, event_reasoner_p, plan_p, motivating_window):
        # Workers inherit the parent's cache *configuration*: no cache on the
        # parent means no hidden caching in PROCESSES mode either, keeping
        # cross-mode latency comparisons honest.
        with ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.PROCESSES, max_workers=1
        ) as parallel:
            parallel.reason(motivating_window)
            repeat = parallel.reason(motivating_window)
        assert repeat.metrics.cache_hits == 0
        assert repeat.metrics.cache_misses == 0

    def test_close_is_idempotent_and_pool_recreates(self, event_reasoner_p, plan_p, motivating_window):
        parallel = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.PROCESSES, max_workers=1
        )
        parallel.close()  # never started: no-op
        first = parallel.reason(motivating_window)
        parallel.close()
        parallel.close()
        second = parallel.reason(motivating_window)  # lazily recreated pool
        parallel.close()
        assert {frozenset(a) for a in first.answers} == {frozenset(a) for a in second.answers}


# --------------------------------------------------------------------------- #
# Wall-clock latency reporting (docstring contract)
# --------------------------------------------------------------------------- #
class TestLatencyReporting:
    def test_threads_latency_is_measured_wall_clock(self, event_reasoner_p, plan_p, motivating_window):
        result = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.THREADS, max_workers=2
        ).reason(motivating_window)
        wall = result.metrics.evaluation_wall_seconds
        assert wall is not None and wall > 0.0
        breakdown = result.metrics.breakdown
        expected = wall + breakdown.partitioning_seconds + breakdown.combining_seconds
        assert result.metrics.latency_seconds == pytest.approx(expected)

    def test_simulated_parallel_latency_is_slowest_partition(self, event_reasoner_p, plan_p, motivating_window):
        result = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.SIMULATED_PARALLEL
        ).reason(motivating_window)
        slowest = max(r.metrics.breakdown.total_seconds for r in result.partition_results)
        breakdown = result.metrics.breakdown
        expected = slowest + breakdown.partitioning_seconds + breakdown.combining_seconds
        assert result.metrics.latency_seconds == pytest.approx(expected)

    def test_serial_latency_sums_partitions(self, event_reasoner_p, plan_p, motivating_window):
        result = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.SERIAL
        ).reason(motivating_window)
        summed = sum(r.metrics.breakdown.total_seconds for r in result.partition_results)
        breakdown = result.metrics.breakdown
        expected = summed + breakdown.partitioning_seconds + breakdown.combining_seconds
        assert result.metrics.latency_seconds == pytest.approx(expected)

    def test_worker_wall_seconds_recorded_per_partition(self, event_reasoner_p, plan_p, motivating_window):
        result = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.THREADS, max_workers=2
        ).reason(motivating_window)
        assert len(result.metrics.worker_wall_seconds) == len(result.partition_results)
        assert all(seconds >= 0.0 for seconds in result.metrics.worker_wall_seconds)
