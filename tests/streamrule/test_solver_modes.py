"""Cross-mode equivalence under incremental solving.

Acceptance contract of the solver cache: for every windowed stream, the
answer sets produced with a :class:`SolverCache` attached (persistent
per-track solver state repaired across slides and re-solved under
assumptions) are identical to the solve-from-scratch answer sets, in every
execution backend and for every window kind.  The cache may change *how* a
window is solved (stratum reuse, encoding repair, disjunctive fallback) but
never *what* the window answers.
"""

from __future__ import annotations

import pytest

from repro.asp.grounding.grounder import GroundingCache
from repro.asp.solving.incremental import SolverCache
from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.window import CountWindow
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from tests.conftest import make_atom
from tests.streamrule.test_delta_modes import (
    BACKEND_FACTORIES,
    scratch_answers_per_window,
    traffic_stream,
)


def solver_cached_reasoner():
    return Reasoner(
        traffic_program(),
        INPUT_PREDICATES,
        EVENT_PREDICATES,
        grounding_cache=GroundingCache(),
        solver_cache=SolverCache(),
    )


class TestBackendWindowKindSolverEquivalence:
    """Acceptance matrix: backends x {tumbling, sliding, hopping} x delta.

    Every cell must answer exactly like serial from-scratch evaluation even
    though the solver cache repairs persistent state between windows.
    """

    pytestmark = pytest.mark.slow

    WINDOW_SCENARIOS = {
        "tumbling": CountWindow(size=60),
        "sliding": CountWindow(size=60, slide=20),
        "hopping": CountWindow(size=40, slide=60),
    }

    @pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES), ids=str)
    @pytest.mark.parametrize("window_kind", sorted(WINDOW_SCENARIOS), ids=str)
    def test_backend_equivalence(self, backend_name, window_kind):
        stream = traffic_stream(200)
        window_policy = self.WINDOW_SCENARIOS[window_kind]
        partitioner = HashPartitioner(3)
        expected = scratch_answers_per_window(window_policy, stream, partitioner)
        backend = BACKEND_FACTORIES[backend_name](2)
        with StreamSession(solver_cached_reasoner(), partitioner=partitioner, backend=backend) as session:
            actual = [
                {frozenset(a) for a in session.evaluate_window(list(delta.window), delta=delta).answers}
                for delta in window_policy.deltas(stream)
            ]
        assert actual == expected


class TestNonStratifiedSolverEquivalence:
    pytestmark = pytest.mark.slow

    CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""

    @pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES), ids=str)
    def test_choice_program_sliding_windows(self, backend_name):
        stream = [make_atom("item", index % 5) for index in range(24)]
        window_policy = CountWindow(size=8, slide=3)
        program = parse_program(self.CHOICE_PROGRAM)

        reference = Reasoner(program, input_predicates=["item"])
        expected = [
            {frozenset(answer) for answer in reference.reason(list(window)).answers}
            for window in window_policy.windows(stream)
        ]

        cached = Reasoner(
            program,
            input_predicates=["item"],
            grounding_cache=GroundingCache(),
            solver_cache=SolverCache(),
        )
        backend = BACKEND_FACTORIES[backend_name](2)
        with StreamSession(cached, partitioner=HashPartitioner(2), backend=backend) as session:
            combined = [
                {
                    frozenset(answer)
                    for answer in session.evaluate_window(list(delta.window), delta=delta).answers
                }
                for delta in window_policy.deltas(stream)
            ]
        assert combined == expected


class TestSolverMetricsFlow:
    def test_session_reports_assumption_resolves(self):
        stream = traffic_stream(200)
        solver_cache = SolverCache()
        reasoner = Reasoner(
            traffic_program(),
            INPUT_PREDICATES,
            EVENT_PREDICATES,
            grounding_cache=GroundingCache(),
            solver_cache=solver_cache,
        )
        window_policy = CountWindow(size=80, slide=20)
        with StreamSession(reasoner, partitioner=HashPartitioner(2)) as session:
            results = [
                session.evaluate_window(list(delta.window), delta=delta)
                for delta in window_policy.deltas(stream)
            ]
        assert len(results) >= 5
        resolves = sum(result.metrics.assumption_resolves for result in results)
        fulls = sum(result.metrics.solver_full_solves for result in results)
        # Each partition track pays one full solve on its first window;
        # everything after re-solves incrementally.
        assert fulls >= 1
        assert resolves > fulls
        stats = solver_cache.statistics()
        assert stats["incremental_solves"] == float(resolves)
        assert stats["full_solves"] == float(fulls)
        assert stats["solver_states"] >= 1.0

    def test_tumbling_windows_keep_no_solver_state(self):
        stream = traffic_stream(200)
        solver_cache = SolverCache()
        reasoner = Reasoner(
            traffic_program(),
            INPUT_PREDICATES,
            EVENT_PREDICATES,
            grounding_cache=GroundingCache(),
            solver_cache=solver_cache,
        )
        with StreamSession(reasoner, partitioner=HashPartitioner(2)) as session:
            results = [
                session.evaluate_window(list(window))
                for window in CountWindow(size=50).windows(stream)
            ]
        # Tumbling windows carry nothing over: the work items never want
        # incremental evaluation, so no solver state is created.
        assert all(result.metrics.assumption_resolves == 0 for result in results)
        assert solver_cache.statistics()["solver_states"] == 0.0

    def test_metrics_flow_without_solver_cache_stays_zero(self):
        stream = traffic_stream(120)
        reasoner = Reasoner(
            traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
        )
        window_policy = CountWindow(size=60, slide=20)
        with StreamSession(reasoner, partitioner=HashPartitioner(2)) as session:
            results = [
                session.evaluate_window(list(delta.window), delta=delta)
                for delta in window_policy.deltas(stream)
            ]
        for result in results:
            assert result.metrics.assumption_resolves == 0
            assert result.metrics.solver_full_solves == 0
            assert result.metrics.encoding_repairs == 0
