"""Wire-layer tests: framing, handshake, delta shipping, failure semantics.

The unhappy paths of the distributed tier, as specified in
``docs/wire-protocol.md``: handshake version mismatches refuse cleanly,
delta frames are measurably smaller than full fact sets on sliding windows,
reconnects back off exponentially, a worker dying mid-window gets its slots
rerouted without losing or duplicating a window, and an empty fleet
degrades to inline evaluation.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.asp.syntax.parser import parse_program
from repro.core.partitioner import HashPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.backends import InlineBackend, TcpBackend
from repro.streamrule.errors import BackendConnectionError, HandshakeError, ProtocolError
from repro.streamrule.fleet import WorkerEndpoint, WorkerFleet
from repro.streamrule.net import (
    MAGIC,
    PROTOCOL_VERSION,
    DeltaDecoder,
    DeltaShipper,
    FrameKind,
    IdFactDelta,
    IdWorkItem,
    WorkerClient,
    apply_facts_diff,
    apply_id_runs,
    connect_with_backoff,
    diff_facts,
    diff_id_runs,
    overlap_length,
    recv_exactly,
    recv_frame,
    send_frame,
)
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.work import WorkItem
from repro.streamrule.worker import WorkerServer, parse_listen_address
from tests.conftest import make_atom

CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""


def choice_reasoner():
    return Reasoner(parse_program(CHOICE_PROGRAM), input_predicates=["item"])


def choice_payload():
    return pickle.dumps(choice_reasoner())


def work_item(count=3, track=0, epoch=0):
    return WorkItem(facts=tuple(make_atom("item", index) for index in range(count)), track=track, epoch=epoch)


def traffic_stream(length, seed=31):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
class TestFraming:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, FrameKind.WORK, b"payload-bytes")
            kind, payload = recv_frame(right)
            assert kind is FrameKind.WORK
            assert payload == b"payload-bytes"
        finally:
            left.close()
            right.close()

    def test_empty_payload_frames(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, FrameKind.PING)
            kind, payload = recv_frame(right)
            assert kind is FrameKind.PING and payload == b""
        finally:
            left.close()
            right.close()

    def test_unknown_frame_kind_is_a_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x00\xfe")  # length 0, kind 254
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_closed_peer_raises_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(right)
        finally:
            right.close()


# --------------------------------------------------------------------------- #
# Delta shipping codec
# --------------------------------------------------------------------------- #
class TestOverlap:
    def test_sliding_overlap(self):
        previous = tuple(range(10))
        current = tuple(range(3, 13))
        assert overlap_length(previous, current) == 7

    def test_disjoint_windows(self):
        assert overlap_length((1, 2, 3), (4, 5, 6)) == 0

    def test_identical_windows(self):
        facts = tuple(range(5))
        assert overlap_length(facts, facts) == 5

    def test_empty_sides(self):
        assert overlap_length((), (1,)) == 0
        assert overlap_length((1,), ()) == 0

    def test_current_contained_in_previous_suffix(self):
        assert overlap_length((1, 2, 3, 4), (3, 4)) == 2


class TestFactsDiff:
    def test_sliding_shape_is_one_copy_run(self):
        previous = tuple(make_atom("p", value) for value in range(20))
        current = previous[5:] + tuple(make_atom("p", value) for value in range(100, 105))
        ops = diff_facts(previous, current)
        assert ops[0] == (5, 15)  # the shared suffix, one copy op
        assert apply_facts_diff(previous, ops) == current

    def test_regrouped_shape_copies_each_group(self):
        # A predicate-regrouping partitioner keeps the shared content
        # mid-sequence, per predicate group -- one copy run per group.
        group_a = tuple(make_atom("a", value) for value in range(12))
        group_b = tuple(make_atom("b", value) for value in range(12))
        previous = group_a + group_b
        current = (
            group_a[4:] + tuple(make_atom("a", value) for value in range(100, 103))
            + group_b[4:] + tuple(make_atom("b", value) for value in range(200, 203))
        )
        ops = diff_facts(previous, current)
        copy_ops = [op for op in ops if isinstance(op[0], int)]
        assert len(copy_ops) == 2
        assert sum(length for _, length in copy_ops) == 16
        assert apply_facts_diff(previous, ops) == current

    def test_disjoint_content_is_all_literal(self):
        previous = tuple(make_atom("p", value) for value in range(10))
        current = tuple(make_atom("p", value) for value in range(100, 110))
        ops = diff_facts(previous, current)
        assert len(ops) == 1 and not isinstance(ops[0][0], int)
        assert apply_facts_diff(previous, ops) == current

    def test_duplicate_facts_round_trip(self):
        repeated = make_atom("p", 1)
        previous = (repeated,) * 10
        current = (repeated,) * 7 + tuple(make_atom("q", value) for value in range(3))
        ops = diff_facts(previous, current)
        assert apply_facts_diff(previous, ops) == current

    def test_out_of_range_copy_op_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            apply_facts_diff((make_atom("p", 1),), ((0, 5),))


class TestDeltaCodec:
    def test_round_trip_reconstructs_every_window(self):
        stream = traffic_stream(120)
        shipper, decoder = DeltaShipper(), DeltaDecoder()
        for delta in CountWindow(size=40, slide=10).deltas(stream):
            item = WorkItem(facts=tuple(delta.window), delta=delta, track=2, epoch=delta.index)
            kind, payload = shipper.encode(item)
            rebuilt = decoder.decode(kind, payload)
            assert rebuilt.facts == item.facts
            assert rebuilt.track == 2 and rebuilt.epoch == delta.index
            assert rebuilt.wants_incremental == item.wants_incremental

    def test_sliding_delta_frames_are_measurably_smaller(self):
        """Acceptance: steady-state sliding windows ship WindowDelta-sized frames."""
        stream = traffic_stream(400)
        shipper = DeltaShipper()
        sizes = {FrameKind.WORK: [], FrameKind.DELTA: []}
        for delta in CountWindow(size=150, slide=25).deltas(stream):
            item = WorkItem(facts=tuple(delta.window), delta=delta, track=0, epoch=delta.index)
            kind, payload = shipper.encode(item)
            sizes[kind].append(len(payload))
        assert len(sizes[FrameKind.WORK]) == 1  # only the first window ships full
        assert len(sizes[FrameKind.DELTA]) >= 8  # every slide after that is a delta
        full = sizes[FrameKind.WORK][0]
        assert max(sizes[FrameKind.DELTA]) < full / 2  # slide is 1/6 of the window
        assert sum(sizes[FrameKind.DELTA]) / len(sizes[FrameKind.DELTA]) < full / 3

    def test_tumbling_windows_ship_full(self):
        stream = traffic_stream(120)
        shipper = DeltaShipper()
        kinds = []
        for delta in CountWindow(size=40).deltas(stream):
            item = WorkItem(facts=tuple(delta.window), delta=delta, track=0, epoch=delta.index)
            kinds.append(shipper.encode(item)[0])
        assert all(kind is FrameKind.WORK for kind in kinds)

    def test_decoder_rejects_delta_without_previous_window(self):
        shipper, decoder = DeltaShipper(), DeltaDecoder()
        first = work_item(count=10, track=7)
        shipper.encode(first)
        overlapping = WorkItem(facts=first.facts[2:] + (make_atom("item", 99),), track=7, epoch=1)
        kind, payload = shipper.encode(overlapping)
        assert kind is FrameKind.DELTA
        with pytest.raises(ProtocolError):
            decoder.decode(kind, payload)

    def test_forget_resets_to_full_shipping(self):
        shipper = DeltaShipper()
        item = work_item(count=10)
        shipper.encode(item)
        shipper.forget()
        kind, _ = shipper.encode(item)
        assert kind is FrameKind.WORK


# --------------------------------------------------------------------------- #
# Interned-id shipping (the symbol_ids capability)
# --------------------------------------------------------------------------- #
class TestIdRuns:
    def test_round_trip_with_overlap(self):
        previous = tuple(range(100, 140))
        current = previous[10:] + tuple(range(500, 510))
        ops = diff_id_runs(previous, current)
        assert any(isinstance(op, tuple) for op in ops)  # a copy run was found
        assert apply_id_runs(previous, ops) == current

    def test_two_int_literal_run_is_not_mistaken_for_a_copy(self):
        # The regression the tagged diff core exists for: over id tuples a
        # two-int literal run is structurally identical to a (start, length)
        # copy op; the id form disambiguates by packing literals to bytes.
        previous = ()
        current = (5, 7)
        ops = diff_id_runs(previous, current)
        assert all(isinstance(op, bytes) for op in ops)
        assert apply_id_runs(previous, ops) == current

    def test_out_of_range_copy_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            apply_id_runs((1, 2), ((0, 5),))


class TestSymbolIdCodec:
    @staticmethod
    def pump(shipper, decoder, item):
        """Ship one item through the paired codec, returning (kinds, rebuilt)."""
        kinds, rebuilt = [], None
        for kind, payload in shipper.encode_frames(item):
            kinds.append(kind)
            if kind is FrameKind.SYMBOLS:
                decoder.apply_symbols(payload)
            else:
                rebuilt = decoder.decode(kind, payload)
        return kinds, rebuilt

    def test_first_window_ships_symbols_then_id_work(self):
        shipper = DeltaShipper(symbol_ids=True)
        frames = shipper.encode_frames(work_item(count=5))
        assert [kind for kind, _ in frames] == [FrameKind.SYMBOLS, FrameKind.WORK]
        assert isinstance(pickle.loads(frames[1][1]), IdWorkItem)

    def test_steady_state_window_ships_only_an_id_delta(self):
        shipper, decoder = DeltaShipper(symbol_ids=True), DeltaDecoder()
        first = work_item(count=10, track=3)
        self.pump(shipper, decoder, first)
        overlapping = WorkItem(facts=first.facts[2:] + (make_atom("item", 99),), track=3, epoch=1)
        self.pump(shipper, decoder, overlapping)  # interns item(99)
        steady = WorkItem(facts=overlapping.facts, track=3, epoch=2)
        kinds, rebuilt = self.pump(shipper, decoder, steady)
        assert kinds == [FrameKind.DELTA]  # no new symbols, no full facts
        assert rebuilt.facts == steady.facts

    def test_round_trip_reconstructs_every_window(self):
        stream = traffic_stream(120)
        shipper, decoder = DeltaShipper(symbol_ids=True), DeltaDecoder()
        for delta in CountWindow(size=40, slide=10).deltas(stream):
            item = WorkItem(facts=tuple(delta.window), delta=delta, track=2, epoch=delta.index)
            kinds, rebuilt = self.pump(shipper, decoder, item)
            assert kinds[-1] in (FrameKind.WORK, FrameKind.DELTA)
            assert rebuilt.facts == item.facts
            assert rebuilt.track == 2 and rebuilt.epoch == delta.index
            assert rebuilt.wants_incremental == item.wants_incremental

    def test_id_frames_beat_pickles_on_a_recurring_universe(self):
        """Acceptance: known facts cross the wire as 4-byte ids.

        The scenario delta shipping cannot compress: windows drawn from a
        recurring fact universe but *reordered* each time (a hash
        partitioner regrouping facts, a shuffling source), which breaks the
        copy-run matcher and forces legacy shipping back to full pickled
        fact sets.  Interned shipping pickles each symbol once, in the
        first sync, and re-ships it as 4 bytes forever after.
        """
        import random

        universe = [make_atom("reading", index) for index in range(100)]
        shuffler = random.Random(11)
        legacy = DeltaShipper()
        interned = DeltaShipper(symbol_ids=True)
        legacy_bytes = interned_bytes = 0
        for epoch in range(10):
            facts = list(universe)
            shuffler.shuffle(facts)
            item = WorkItem(facts=tuple(facts), track=0, epoch=epoch)
            legacy_bytes += len(legacy.encode(item)[1])
            interned_bytes += sum(len(payload) for _, payload in interned.encode_frames(item))
        assert interned_bytes < legacy_bytes / 2

    def test_plain_delta_shipper_never_emits_symbol_frames(self):
        item = work_item(count=5)
        assert [kind for kind, _ in DeltaShipper().encode_frames(item)] == [FrameKind.WORK]
        # encode() stays valid for the legacy single-frame configuration.
        kind, _ = DeltaShipper().encode(item)
        assert kind is FrameKind.WORK

    def test_encode_refuses_multi_frame_configurations(self):
        shipper = DeltaShipper(symbol_ids=True)
        with pytest.raises(RuntimeError):
            shipper.encode(work_item(count=3))

    def test_decoder_rejects_a_symbol_gap(self):
        shipper, decoder = DeltaShipper(symbol_ids=True), DeltaDecoder()
        frames = shipper.encode_frames(work_item(count=5))
        # Drop the SYMBOLS frame: the work frame's ids cannot resolve.
        work_kind, work_payload = frames[-1]
        with pytest.raises(IndexError):
            decoder.decode(work_kind, work_payload)

    def test_symbol_sync_applies_idempotently(self):
        shipper, decoder = DeltaShipper(symbol_ids=True), DeltaDecoder()
        frames = shipper.encode_frames(work_item(count=4))
        sync_payload = frames[0][1]
        assert decoder.apply_symbols(sync_payload) == 4
        assert decoder.apply_symbols(sync_payload) == 0  # replay is a no-op


class TestSymbolIdWire:
    def test_end_to_end_matches_inline(self):
        stream = traffic_stream(90)
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with WorkerServer() as server:
            with WorkerClient(server.address, pickle.dumps(reasoner)) as client:
                assert client.capabilities.get("symbol_ids") is True
                inline = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
                for delta in CountWindow(size=30, slide=10).deltas(stream):
                    item = WorkItem(facts=tuple(delta.window), delta=delta, epoch=delta.index)
                    over_the_wire = client.submit_item(item)
                    local = inline.reason_item(item)
                    assert set(over_the_wire.answers) == set(local.answers)
                assert client.stats.symbol_frames > 0
                assert client.stats.bytes_symbols > 0

    def test_client_can_decline_symbol_ids(self):
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload(), symbol_ids=False) as client:
                assert "symbol_ids" not in client.capabilities
                assert client.submit_item(work_item()).answers
                assert client.stats.symbol_frames == 0

    def test_server_can_refuse_symbol_ids(self):
        with WorkerServer(capabilities={"delta_shipping": True, "symbol_ids": False}) as server:
            with WorkerClient(server.address, choice_payload()) as client:
                assert "symbol_ids" not in client.capabilities
                assert client.submit_item(work_item()).answers


# --------------------------------------------------------------------------- #
# Handshake
# --------------------------------------------------------------------------- #
class TestHandshake:
    def test_version_mismatch_is_refused_with_both_versions(self):
        with WorkerServer(protocol_version=99) as server:
            with pytest.raises(HandshakeError) as outcome:
                WorkerClient(server.address, choice_payload(), attempts=1)
            message = str(outcome.value)
            assert "99" in message and "1" in message

    def test_mismatched_client_does_not_kill_the_server(self):
        with WorkerServer(protocol_version=99) as server:
            with pytest.raises(HandshakeError):
                WorkerClient(server.address, choice_payload(), attempts=1)
            assert server.running
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload(), attempts=1) as client:
                assert client.submit_item(work_item()).answers

    def test_capability_negotiation_degrades_to_full_shipping(self):
        stream = traffic_stream(90)
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with WorkerServer(capabilities={"delta_shipping": False}) as server:
            with WorkerClient(server.address, pickle.dumps(reasoner)) as client:
                assert "delta_shipping" not in client.capabilities
                for delta in CountWindow(size=30, slide=10).deltas(stream):
                    item = WorkItem(facts=tuple(delta.window), delta=delta, epoch=delta.index)
                    client.submit_item(item)
                assert client.stats.items_delta == 0
                assert client.stats.items_full > 0

    def test_delta_capability_negotiated_by_default(self):
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload()) as client:
                assert client.capabilities.get("delta_shipping") is True

    def test_client_can_decline_delta_shipping(self):
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload(), delta_shipping=False) as client:
                assert "delta_shipping" not in client.capabilities

    def test_heartbeat_ping(self):
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload()) as client:
                latency = client.ping()
                assert latency >= 0.0
                assert client.stats.pings == 1
                assert client.try_ping()


# --------------------------------------------------------------------------- #
# Reconnect with bounded exponential backoff
# --------------------------------------------------------------------------- #
class TestBackoff:
    @staticmethod
    def _free_port():
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_exhausted_budget_raises_connection_error(self):
        sleeps = []
        with pytest.raises(BackendConnectionError):
            connect_with_backoff(
                ("127.0.0.1", self._free_port()),
                attempts=4,
                base_delay=0.05,
                max_delay=0.15,
                sleep=sleeps.append,
            )
        # attempts - 1 pauses, doubling up to the cap: 0.05, 0.1, 0.15.
        assert sleeps == [0.05, 0.1, 0.15]

    def test_connects_once_the_worker_comes_back(self):
        port = self._free_port()
        server = WorkerServer(port=port)
        attempts = {"count": 0}

        def sleep_then_start(delay):
            attempts["count"] += 1
            if attempts["count"] == 2:
                server.start()  # the worker "restarts" during the backoff

        try:
            connection = connect_with_backoff(
                ("127.0.0.1", port), attempts=5, base_delay=0.01, sleep=sleep_then_start
            )
            connection.close()
            assert attempts["count"] >= 2
        finally:
            server.stop()

    def test_at_least_one_attempt_required(self):
        with pytest.raises(ValueError):
            connect_with_backoff(("127.0.0.1", 1), attempts=0)


# --------------------------------------------------------------------------- #
# Worker death: rerouting without losing or duplicating windows
# --------------------------------------------------------------------------- #
class TestWorkerDeath:
    def test_dead_worker_slots_reroute_to_survivors(self):
        stream = traffic_stream(200)
        window = CountWindow(size=80, slide=20)
        partitioner = HashPartitioner(3)
        reference = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        with StreamSession(reference, partitioner=partitioner, backend=InlineBackend(simulated=False)) as session:
            expected = [
                {frozenset(answer) for answer in session.evaluate_window(list(w)).answers}
                for w in window.windows(stream)
            ]

        first, second = WorkerServer(), WorkerServer()
        first.start()
        second.start()
        try:
            backend = TcpBackend([first.address, second.address], reconnect_attempts=1, base_delay=0.01)
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            solutions = []
            with StreamSession(reasoner, partitioner=partitioner, backend=backend) as session:
                for index, delta in enumerate(window.deltas(stream)):
                    if index == 2:
                        first.stop()  # one worker dies mid-stream
                    result = session.evaluate_window(list(delta.window), delta=delta)
                    solutions.append({frozenset(answer) for answer in result.answers})
                # No window lost, none duplicated, all answers exact.
                assert len(solutions) == len(expected)
                assert solutions == expected
                assert session.fallbacks == 0  # the fleet absorbed the fault
                assert backend.fleet.reroutes >= 1
                survivors = [str(endpoint) for endpoint in backend.fleet.alive_endpoints]
                assert survivors == [f"{second.address[0]}:{second.address[1]}"]
                # Every slot now routes to the survivor.
                assert set(backend.fleet.slot_table().values()) == set(survivors)
        finally:
            first.stop()
            second.stop()

    def test_empty_fleet_falls_back_inline(self):
        stream = traffic_stream(120)
        window = CountWindow(size=60, slide=30)
        partitioner = HashPartitioner(2)
        servers = [WorkerServer(), WorkerServer()]
        for server in servers:
            server.start()
        try:
            backend = TcpBackend(
                [server.address for server in servers], reconnect_attempts=1, base_delay=0.01
            )
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            with StreamSession(reasoner, partitioner=partitioner, backend=backend) as session:
                deltas = list(window.deltas(stream))
                session.evaluate_window(list(deltas[0].window), delta=deltas[0])
                for server in servers:
                    server.stop()  # the whole fleet goes dark
                result = session.evaluate_window(list(deltas[1].window), delta=deltas[1])
                assert result.answers  # the stream kept flowing...
                assert session.fallbacks > 0  # ...on inline evaluation
                assert backend.fleet.alive_endpoints == []

                reference = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
                with StreamSession(reference, partitioner=partitioner) as inline_session:
                    expected = inline_session.evaluate_window(list(deltas[1].window))
                assert set(result.answers) == set(expected.answers)
        finally:
            for server in servers:
                server.stop()

    def test_fleet_refuses_without_fallback_when_disabled(self):
        server = WorkerServer()
        server.start()
        backend = TcpBackend([server.address], reconnect_attempts=1, base_delay=0.01)
        reasoner = choice_reasoner()
        try:
            with StreamSession(reasoner, backend=backend, inline_fallback=False) as session:
                session.evaluate_window([make_atom("item", 1)])
                server.stop()
                with pytest.raises(BackendConnectionError):
                    session.evaluate_window([make_atom("item", 2)])
        finally:
            server.stop()

    def test_worker_restarted_with_wrong_version_is_retired_not_fatal(self):
        # A supervisor restarts a dead worker on a mismatched build: the
        # mid-stream reconnect hits a HandshakeError, which must retire the
        # endpoint and reroute -- not crash the stream (version skew is
        # only fatal at backend start).
        first, second = WorkerServer(), WorkerServer()
        first.start()
        second.start()
        first_port = first.address[1]
        imposter = None
        try:
            backend = TcpBackend([first.address, second.address], reconnect_attempts=1, base_delay=0.01)
            with StreamSession(choice_reasoner(), backend=backend, inline_fallback=False) as session:
                session.evaluate_window([make_atom("item", 1)])
                first.stop()
                imposter = WorkerServer(port=first_port, protocol_version=99)
                imposter.start()
                result = session.evaluate_window([make_atom("item", 2)])
                assert result.answers  # rerouted to the survivor
                assert [str(e) for e in backend.fleet.alive_endpoints] == [
                    f"{second.address[0]}:{second.address[1]}"
                ]
        finally:
            first.stop()
            second.stop()
            if imposter is not None:
                imposter.stop()

    def test_heartbeat_discovers_a_dead_worker_between_windows(self):
        first, second = WorkerServer(), WorkerServer()
        first.start()
        second.start()
        try:
            backend = TcpBackend(
                [first.address, second.address],
                heartbeat_interval=0.05,
                reconnect_attempts=1,
                base_delay=0.01,
            )
            with StreamSession(choice_reasoner(), backend=backend) as session:
                session.evaluate_window([make_atom("item", 1)])
                first.stop()
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline and len(backend.fleet.alive_endpoints) > 1:
                    time.sleep(0.05)
                # The heartbeat noticed the death without any submit.
                assert len(backend.fleet.alive_endpoints) == 1
        finally:
            first.stop()
            second.stop()


class TestFleetCoordinator:
    def test_more_slots_than_endpoints_spread_round_robin(self):
        with WorkerServer() as first, WorkerServer() as second:
            fleet = WorkerFleet([first.address, second.address], slots=4)
            fleet.start(choice_payload())
            try:
                table = fleet.slot_table()
                assert len(table) == 4
                assert set(table.values()) == {str(WorkerEndpoint.parse(first.address)),
                                               str(WorkerEndpoint.parse(second.address))}
                assert table[0] == table[2] and table[1] == table[3]
            finally:
                fleet.close()

    def test_unreachable_endpoint_at_start_is_routed_around(self):
        dead_port_probe = socket.socket()
        dead_port_probe.bind(("127.0.0.1", 0))
        dead_address = dead_port_probe.getsockname()[:2]
        dead_port_probe.close()
        with WorkerServer() as alive:
            fleet = WorkerFleet([dead_address, alive.address], connect_attempts=1, base_delay=0.01)
            fleet.start(choice_payload())
            try:
                assert [str(e) for e in fleet.alive_endpoints] == [f"{alive.address[0]}:{alive.address[1]}"]
                assert fleet.roundtrip(0, work_item()).answers  # slot 0 rerouted
            finally:
                fleet.close()

    def test_start_with_no_reachable_worker_raises(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()[:2]
        probe.close()
        fleet = WorkerFleet([address], connect_attempts=1, base_delay=0.01)
        with pytest.raises(BackendConnectionError):
            fleet.start(choice_payload())

    def test_endpoint_parsing(self):
        endpoint = WorkerEndpoint.parse("worker-3.internal:7700")
        assert endpoint.host == "worker-3.internal" and endpoint.port == 7700
        assert str(endpoint) == "worker-3.internal:7700"
        assert WorkerEndpoint.parse(endpoint) is endpoint
        assert WorkerEndpoint.parse(("127.0.0.1", 9)) == WorkerEndpoint("127.0.0.1", 9)
        with pytest.raises(ValueError):
            WorkerEndpoint.parse("no-port")

    def test_listen_address_parsing(self):
        assert parse_listen_address("0.0.0.0:7700") == ("0.0.0.0", 7700)
        with pytest.raises(ValueError):
            parse_listen_address("7700")
        with pytest.raises(ValueError):
            parse_listen_address("host:notaport")
        with pytest.raises(ValueError):
            parse_listen_address("host:70000")


# --------------------------------------------------------------------------- #
# Wire statistics: delta shipping visible end to end
# --------------------------------------------------------------------------- #
class TestWireStatistics:
    def test_sliding_stream_ships_mostly_deltas(self):
        stream = traffic_stream(200)
        window = CountWindow(size=80, slide=20)
        with WorkerServer() as server:
            backend = TcpBackend([server.address])
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            with StreamSession(reasoner, partitioner=HashPartitioner(2), backend=backend) as session:
                for delta in window.deltas(stream):
                    session.evaluate_window(list(delta.window), delta=delta)
            stats = backend.wire_statistics()  # final snapshot survives close
        assert stats["items_delta"] > stats["items_full"]
        assert stats["bytes_delta"] / stats["items_delta"] < stats["bytes_full"] / stats["items_full"]

    def test_delta_shipping_disabled_ships_everything_full(self):
        stream = traffic_stream(120)
        window = CountWindow(size=60, slide=20)
        with WorkerServer() as server:
            backend = TcpBackend([server.address], delta_shipping=False)
            reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
            with StreamSession(reasoner, backend=backend) as session:
                for delta in window.deltas(stream):
                    session.evaluate_window(list(delta.window), delta=delta)
            stats = backend.wire_statistics()
        assert stats["items_delta"] == 0
        assert stats["items_full"] > 0


# --------------------------------------------------------------------------- #
# Pipelined connections: multiple outstanding frames per socket
# --------------------------------------------------------------------------- #
class _SilentServer:
    """Handshakes like a worker, then swallows frames without answering.

    The fixture for the fail-all-pending test: it lets any number of work
    frames pile up unanswered, then severs the connection on demand.
    """

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()[:2]
        self.frames_seen = 0
        self._connection = None
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        connection, _ = self._listener.accept()
        self._connection = connection
        try:
            assert recv_exactly(connection, len(MAGIC)) == MAGIC
            recv_frame(connection)  # HELLO
            send_frame(
                connection,
                FrameKind.WELCOME,
                pickle.dumps({"protocol": PROTOCOL_VERSION, "capabilities": {}}),
            )
            recv_frame(connection)  # REASONER
            send_frame(connection, FrameKind.READY)
            while True:
                recv_frame(connection)  # swallow work frames, answer nothing
                self.frames_seen += 1
        except (EOFError, OSError):
            return

    def sever(self):
        if self._connection is not None:
            try:
                self._connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._connection.close()

    def close(self):
        self.sever()
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


class TestPipelinedConnection:
    """The FIFO ticket queue: several frames in flight on one connection."""

    def test_concurrent_submits_share_one_connection(self):
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload()) as client:
                items = [work_item(count=3, track=track, epoch=track) for track in range(6)]
                with ThreadPoolExecutor(max_workers=6) as pool:
                    results = list(pool.map(client.submit_item, items))
        assert all(result.answers for result in results)
        assert client.stats.items == 6
        assert client.pending_count == 0

    def test_heartbeat_interleaves_with_pipelined_work(self):
        with WorkerServer() as server:
            with WorkerClient(server.address, choice_payload()) as client:
                with ThreadPoolExecutor(max_workers=4) as pool:
                    work = [pool.submit(client.submit_item, work_item(track=track)) for track in range(3)]
                    ping = pool.submit(client.ping)
                    assert all(future.result().answers for future in work)
                    assert ping.result() >= 0.0
        assert client.stats.pings == 1
        assert client.stats.items == 3

    def test_connection_loss_fails_every_pending_ticket(self):
        server = _SilentServer()
        try:
            client = WorkerClient(server.address, choice_payload(), attempts=1)
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [pool.submit(client.submit_item, work_item(track=track)) for track in range(2)]
                deadline = time.monotonic() + 5.0
                while client.pending_count < 2 and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert client.pending_count == 2  # both frames outstanding, none answered
                server.sever()
                for future in futures:
                    with pytest.raises(BackendConnectionError):
                        future.result(timeout=5.0)
            assert not client.alive
            assert client.pending_count == 0
        finally:
            server.close()
