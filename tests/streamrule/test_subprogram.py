"""Rule normalization, program signatures, and union compatibility."""

from __future__ import annotations

import pytest

from repro.asp.syntax.parser import parse_program, parse_rule
from repro.programs.fraud import fraud_program, fraud_program_extended
from repro.programs.iot import iot_program, iot_program_extended
from repro.programs.traffic import traffic_program, traffic_program_prime
from repro.streamrule.server import (
    normalize_rule,
    program_signature,
    rule_fingerprint,
    shared_fraction,
    union_conflicts,
)


class TestNormalizeRule:
    def test_alpha_variants_normalize_identically(self):
        first = parse_rule("linked(A, B) :- sent(A, T), received(B, T).")
        second = parse_rule("linked(X, Y) :- sent(X, Txn), received(Y, Txn).")
        assert str(normalize_rule(first)) == str(normalize_rule(second))
        assert rule_fingerprint(first) == rule_fingerprint(second)

    def test_body_reordering_normalizes_identically(self):
        first = parse_rule("jam(X) :- slow(X), crowded(X), not light(X).")
        second = parse_rule("jam(X) :- not light(X), crowded(X), slow(X).")
        assert rule_fingerprint(first) == rule_fingerprint(second)

    def test_combined_rename_and_reorder(self):
        first = parse_rule("chain(A, C) :- chain(A, B), linked(B, C).")
        second = parse_rule("chain(U, W) :- linked(V, W), chain(U, V).")
        assert rule_fingerprint(first) == rule_fingerprint(second)

    def test_different_rules_fingerprint_differently(self):
        first = parse_rule("alert(X) :- risky(X).")
        second = parse_rule("alert(X) :- risky(X), not safe(X).")
        third = parse_rule("warn(X) :- risky(X).")
        prints = {rule_fingerprint(rule) for rule in (first, second, third)}
        assert len(prints) == 3

    def test_comparison_bodies_normalize(self):
        first = parse_rule("big(T) :- amount(T, X), X > 500.")
        second = parse_rule("big(Txn) :- amount(Txn, V), V > 500.")
        different = parse_rule("big(T) :- amount(T, X), X > 501.")
        assert rule_fingerprint(first) == rule_fingerprint(second)
        assert rule_fingerprint(first) != rule_fingerprint(different)

    def test_normalization_preserves_semantics_shape(self):
        rule = parse_rule("overheat(Z) :- located(S, Z), hot(S), not vented(Z).")
        normalized = normalize_rule(rule)
        assert len(normalized.body) == len(rule.body)
        assert {str(atom.predicate) for atom in normalized.head} == {"overheat"}


class TestProgramSignature:
    def test_fingerprints_and_definitions(self):
        program = parse_program(
            """
            a(X) :- b(X), c(X).
            a(X) :- d(X).
            e(X) :- a(X).
            """
        )
        signature = program_signature(program, name="test")
        assert len(signature.fingerprints) == 3
        assert len(signature.definitions["a"]) == 2
        assert len(signature.definitions["e"]) == 1
        assert {"a", "b", "c", "d", "e"} <= set(signature.mentioned)

    def test_shared_fraction_of_scenario_pairs(self):
        base = program_signature(fraud_program()).fingerprints
        extended = program_signature(fraud_program_extended()).fingerprints
        assert shared_fraction(base, extended) == 1.0  # extension is a superset
        iot_base = program_signature(iot_program()).fingerprints
        assert shared_fraction(base, iot_base) == 0.0  # disjoint scenarios
        assert shared_fraction((), ()) == 0.0

    def test_traffic_p_and_p_prime_share_most_rules(self):
        p = program_signature(traffic_program()).fingerprints
        p_prime = program_signature(traffic_program_prime()).fingerprints
        assert shared_fraction(p, p_prime) == 1.0  # P' = P + r7


class TestUnionConflicts:
    def test_identical_programs_never_conflict(self):
        signatures = {
            "a/q": program_signature(traffic_program(), name="a/q"),
            "b/q": program_signature(traffic_program(), name="b/q"),
        }
        assert union_conflicts(signatures) == []

    def test_superset_extension_is_compatible(self):
        signatures = {
            "fraud/base": program_signature(fraud_program(), name="fraud/base"),
            "fraud/ext": program_signature(fraud_program_extended(), name="fraud/ext"),
            "iot/base": program_signature(iot_program(), name="iot/base"),
            "iot/ext": program_signature(iot_program_extended(), name="iot/ext"),
        }
        assert union_conflicts(signatures) == []

    def test_p_prime_conflicts_with_p(self):
        # P' adds rule r7 for traffic_jam, which P mentions but lacks: the
        # union would change P's notifications.
        signatures = {
            "a/p": program_signature(traffic_program(), name="a/p"),
            "b/pp": program_signature(traffic_program_prime(), name="b/pp"),
        }
        conflicts = union_conflicts(signatures)
        assert conflicts
        assert any("traffic_jam" in conflict for conflict in conflicts)

    def test_disjoint_predicates_are_compatible(self):
        signatures = {
            "x": program_signature(parse_program("p(X) :- q(X)."), name="x"),
            "y": program_signature(parse_program("r(X) :- s(X)."), name="y"),
        }
        assert union_conflicts(signatures) == []

    def test_unshared_constraint_conflicts(self):
        with_constraint = parse_program(
            """
            p(X) :- q(X).
            :- p(X), bad(X).
            """
        )
        without = parse_program("p(X) :- q(X).")
        signatures = {
            "strict": program_signature(with_constraint, name="strict"),
            "lax": program_signature(without, name="lax"),
        }
        conflicts = union_conflicts(signatures)
        assert conflicts
        assert any("constraint" in conflict for conflict in conflicts)

    def test_shared_constraint_is_compatible(self):
        text = """
        p(X) :- q(X).
        :- p(X), bad(X).
        """
        signatures = {
            "one": program_signature(parse_program(text), name="one"),
            "two": program_signature(parse_program(text), name="two"),
        }
        assert union_conflicts(signatures) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
