"""Unit tests for the end-to-end StreamRule pipeline."""

import pytest

from repro.core.partitioner import DependencyPartitioner
from repro.programs.traffic import INPUT_PREDICATES
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.pipeline import StreamRulePipeline


@pytest.fixture
def motivating_triples():
    return [
        Triple("newcastle", "average_speed", 10, timestamp=0.0),
        Triple("newcastle", "car_number", 55, timestamp=1.0),
        Triple("newcastle", "traffic_light", "true", timestamp=2.0),
        Triple("car1", "car_in_smoke", "high", timestamp=3.0),
        Triple("car1", "car_speed", 0, timestamp=4.0),
        Triple("car1", "car_location", "dangan", timestamp=5.0),
    ]


class TestPipeline:
    def test_single_window_produces_solution_triples(self, event_reasoner_p, motivating_triples):
        pipeline = StreamRulePipeline(
            event_reasoner_p,
            query_processor=StreamQueryProcessor(set(INPUT_PREDICATES)),
            window=CountWindow(size=6),
        )
        solutions = pipeline.process_all(motivating_triples)
        assert len(solutions) == 1
        rendered = {triple.as_tuple() for triple in solutions[0].solution_triples}
        assert ("dangan", "car_fire", "true") in rendered
        assert ("dangan", "give_notification", "true") in rendered

    def test_noise_is_filtered_by_query_processor(self, event_reasoner_p, motivating_triples):
        noisy = motivating_triples + [Triple("x", "humidity", 10, timestamp=6.0)]
        pipeline = StreamRulePipeline(
            event_reasoner_p,
            query_processor=StreamQueryProcessor(set(INPUT_PREDICATES)),
            window=CountWindow(size=7),
        )
        [solution] = pipeline.process_all(noisy)
        assert solution.window_size == 6  # the humidity triple was dropped

    def test_multiple_windows(self, event_reasoner_p, motivating_triples):
        pipeline = StreamRulePipeline(
            event_reasoner_p,
            query_processor=StreamQueryProcessor(set(INPUT_PREDICATES)),
            window=CountWindow(size=3),
        )
        solutions = pipeline.process_all(motivating_triples)
        assert len(solutions) == 2
        assert [solution.window_index for solution in solutions] == [0, 1]

    def test_parallel_reasoner_in_pipeline(self, event_reasoner_p, plan_p, motivating_triples):
        parallel = ParallelReasoner(event_reasoner_p, DependencyPartitioner(plan_p))
        pipeline = StreamRulePipeline(parallel, window=CountWindow(size=6))
        [solution] = pipeline.process_all(motivating_triples)
        rendered = {triple.as_tuple() for triple in solution.solution_triples}
        assert ("dangan", "car_fire", "true") in rendered

    def test_without_query_processor(self, event_reasoner_p, motivating_triples):
        pipeline = StreamRulePipeline(event_reasoner_p, window=CountWindow(size=6))
        [solution] = pipeline.process_all(motivating_triples)
        assert solution.window_size == 6

    def test_metrics_are_propagated(self, event_reasoner_p, motivating_triples):
        pipeline = StreamRulePipeline(event_reasoner_p, window=CountWindow(size=6))
        [solution] = pipeline.process_all(motivating_triples)
        assert solution.metrics.latency_seconds > 0
