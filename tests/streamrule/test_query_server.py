"""The multi-tenant query server: registry, lanes, sharing, fairness, ops.

The load-bearing assertions mirror the subsystem's contract:

* two queries sharing rules map onto ONE lane evaluation per window (shared
  grounding-cache track), with *fewer grounding operations* than the same
  queries in isolated sessions and *identical* projected answer sets;
* the backend matrix (inline / threads / loopback socket / processes)
  answers identically through the server;
* mid-stream unregister narrows the fan-out without disturbing the
  surviving tenants;
* the Prometheus endpoint serves every counter family in valid text
  exposition format.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.asp.grounding.grounder import GroundingCache
from repro.programs import fraud as fraud_module
from repro.programs import iot as iot_module
from repro.programs.traffic import (
    EVENT_PREDICATES,
    INPUT_PREDICATES,
    traffic_program,
    traffic_program_prime,
)
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.backends import (
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.streamrule.server import (
    QueryConflictError,
    QueryServer,
    StandingQuery,
    render_prometheus,
)
from repro.streamrule.session import StreamSession


def traffic_stream(length, seed=11):
    return generate_window(
        SyntheticStreamConfig(
            window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
        )
    )


def fraud_stream(length, seed=12):
    return generate_window(
        SyntheticStreamConfig(
            window_size=length,
            input_predicates=fraud_module.INPUT_PREDICATES,
            scheme="fraud",
            seed=seed,
        )
    )


def iot_stream(length, seed=13):
    return generate_window(
        SyntheticStreamConfig(
            window_size=length, input_predicates=iot_module.INPUT_PREDICATES, scheme="iot", seed=seed
        )
    )


def traffic_query(tenant, size=30, slide=None, name="jams", weight=1.0):
    return StandingQuery(
        tenant=tenant,
        name=name,
        program=traffic_program(),
        window=CountWindow(size=size, slide=slide),
        input_predicates=INPUT_PREDICATES,
        output_predicates=EVENT_PREDICATES,
        weight=weight,
    )


def isolated_answers(query, stream):
    """The query evaluated alone, projected like the server projects."""
    inputs = query.effective_inputs()
    outputs = query.effective_outputs()
    slice_ = [item for item in stream if inputs is None or item.predicate in inputs]
    session = StreamSession(
        query.program,
        window=query.window,
        input_predicates=query.input_predicates,
        grounding_cache=GroundingCache(),
    )
    session.push(slice_)
    session.finish()
    collected = []
    for solution in session.results(wait=False):
        projected = {}
        for answer in solution.answers:
            projected.setdefault(frozenset(a for a in answer if a.predicate in outputs))
        collected.append(tuple(projected))
    session.close()
    return collected


def grounding_ops(statistics):
    return statistics["misses"] + statistics["delta_repairs"] + statistics["delta_rebuilds"]


class TestRegistry:
    def test_register_unregister_list(self):
        with QueryServer() as server:
            sub = server.register(traffic_query("city"))
            assert sub.query_key == "city/jams"
            server.register(traffic_query("ops"))
            assert [q.key for q in server.queries()] == ["city/jams", "ops/jams"]
            removed = server.unregister("city/jams")
            assert removed.tenant == "city"
            assert [q.key for q in server.queries()] == ["ops/jams"]

    def test_duplicate_key_rejected(self):
        with QueryServer() as server:
            server.register(traffic_query("city"))
            with pytest.raises(ValueError, match="already registered"):
                server.register(traffic_query("city"))

    def test_unknown_unregister_raises(self):
        with QueryServer() as server:
            with pytest.raises(KeyError):
                server.unregister("ghost/q")

    def test_standing_query_validation(self):
        with pytest.raises(ValueError, match="tenant"):
            traffic_query("has/slash")
        with pytest.raises(ValueError, match="weight"):
            traffic_query("city", weight=0.0)
        with pytest.raises(TypeError, match="CountWindow"):
            StandingQuery(tenant="t", name="q", program=traffic_program(), window=object())

    def test_closed_server_rejects_operations(self):
        server = QueryServer()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.register(traffic_query("city"))


class TestConflictGate:
    def test_p_prime_alongside_p_is_rejected(self):
        with QueryServer() as server:
            server.register(traffic_query("city"))
            prime = StandingQuery(
                tenant="ops",
                name="jams",
                program=traffic_program_prime(),
                window=CountWindow(size=30),
                input_predicates=INPUT_PREDICATES,
            )
            with pytest.raises(QueryConflictError, match="traffic_jam"):
                server.register(prime)
            # The rejected query left no trace.
            assert len(server.registry) == 1
            assert server.sharing_summary()["queries"] == 1.0

    def test_superset_extension_is_accepted(self):
        with QueryServer() as server:
            server.register(
                StandingQuery(
                    tenant="desk",
                    name="alerts",
                    program=fraud_module.fraud_program(),
                    window=CountWindow(size=30),
                    input_predicates=fraud_module.INPUT_PREDICATES,
                )
            )
            server.register(
                StandingQuery(
                    tenant="aml",
                    name="alerts",
                    program=fraud_module.fraud_program_extended(),
                    window=CountWindow(size=30),
                    input_predicates=fraud_module.INPUT_PREDICATES,
                )
            )
            summary = server.sharing_summary()
            assert summary["shared_rules"] >= summary["combined_rules"] * 0.5


class TestSharedLane:
    def test_one_evaluation_serves_both_tenants(self):
        stream = traffic_stream(90)
        with QueryServer() as server:
            sub_a = server.register(traffic_query("city"))
            sub_b = server.register(traffic_query("ops"))
            assert server.sharing_summary()["lanes"] == 1.0
            server.push(stream)
            server.finish()
            results_a, results_b = sub_a.drain(), sub_b.drain()
            assert len(results_a) == len(results_b) == 3  # 90 / size 30, tumbling
            # One lane evaluation per window, not one per tenant.
            assert sum(row.dispatched for row in server.scheduler.snapshot()) == 3
            for first, second in zip(results_a, results_b):
                assert first.answers == second.answers
                assert first.shared_with == second.shared_with == 2

    def test_shared_lane_grounds_less_than_isolated_sessions(self):
        """The acceptance criterion: >=50%-overlap queries share grounding."""
        base = StandingQuery(
            tenant="desk",
            name="alerts",
            program=fraud_module.fraud_program(),
            window=CountWindow(size=40, slide=20),
            input_predicates=fraud_module.INPUT_PREDICATES,
            output_predicates=fraud_module.ALERT_PREDICATES,
        )
        extended = StandingQuery(
            tenant="aml",
            name="alerts",
            program=fraud_module.fraud_program_extended(),
            window=CountWindow(size=40, slide=20),
            input_predicates=fraud_module.INPUT_PREDICATES,
            output_predicates=fraud_module.EXTENDED_ALERT_PREDICATES,
        )
        stream = fraud_stream(160)
        with QueryServer() as server:
            subs = {q.key: server.register(q) for q in (base, extended)}
            server.push(stream)
            server.finish()
            server_ops = grounding_ops(server.grounding_cache.statistics())
            server_answers = {
                key: [result.answers for result in sub.drain()] for key, sub in subs.items()
            }
        isolated_ops = 0.0
        for query in (base, extended):
            cache = GroundingCache()
            session = StreamSession(
                query.program,
                window=query.window,
                input_predicates=query.input_predicates,
                grounding_cache=cache,
            )
            session.push(list(stream))
            session.finish()
            for _ in session.results(wait=False):
                pass
            session.close()
            isolated_ops += grounding_ops(cache.statistics())
            assert server_answers[query.key] == isolated_answers(query, stream)
        assert server_ops < isolated_ops

    def test_distinct_windows_get_distinct_lanes(self):
        with QueryServer() as server:
            server.register(traffic_query("city", size=30))
            server.register(traffic_query("ops", size=50))
            assert server.sharing_summary()["lanes"] == 2.0

    def test_lane_tracks_are_labeled(self):
        with QueryServer() as server:
            server.register(traffic_query("city"))
            labels = server.grounding_cache.track_labels()
            assert any("city/jams" in label for label in labels.values())


BACKEND_FACTORIES = {
    "inline": lambda: InlineBackend(),
    "threads": lambda: ThreadPoolBackend(max_workers=2),
    "loopback-socket": lambda: LoopbackSocketBackend(max_workers=2),
}


class TestBackendMatrix:
    @pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES), ids=str)
    def test_server_matches_isolated_sessions(self, backend_name):
        queries = [
            traffic_query("city", size=30, slide=10),
            traffic_query("ops", size=30, slide=10),
            StandingQuery(
                tenant="plant",
                name="anomalies",
                program=iot_module.iot_program(),
                window=CountWindow(size=24),
                input_predicates=iot_module.INPUT_PREDICATES,
                output_predicates=iot_module.ANOMALY_PREDICATES,
            ),
        ]
        stream = []
        for t_item, i_item in zip(traffic_stream(90), iot_stream(90)):
            stream += [t_item, i_item]
        with QueryServer(backend=BACKEND_FACTORIES[backend_name]()) as server:
            subs = {q.key: server.register(q) for q in queries}
            server.push(stream)
            server.finish()
            for query in queries:
                got = [result.answers for result in subs[query.key].drain()]
                assert got == isolated_answers(query, stream), (backend_name, query.key)

    @pytest.mark.slow
    def test_server_matches_isolated_sessions_processes(self):
        queries = [traffic_query("city", size=30), traffic_query("ops", size=30)]
        stream = traffic_stream(90)
        with QueryServer(backend=ProcessPoolBackend(max_workers=2)) as server:
            subs = {q.key: server.register(q) for q in queries}
            server.push(stream)
            server.finish()
            for query in queries:
                got = [result.answers for result in subs[query.key].drain()]
                assert got == isolated_answers(query, stream)


class TestUnregisterMidStream:
    def test_survivors_keep_their_results(self):
        stream = traffic_stream(180)
        with QueryServer() as server:
            sub_a = server.register(traffic_query("city"))
            sub_b = server.register(traffic_query("ops"))
            server.push(stream[:90])
            server.finish()
            first_half_a = sub_a.drain()
            assert all(result.shared_with == 2 for result in first_half_a)
            server.unregister("ops/jams")
            dropped_results = len(sub_b.drain())
            server.push(stream[90:])
            server.finish()
            second_half_a = sub_a.drain()
            assert len(second_half_a) == 3
            assert all(result.shared_with == 1 for result in second_half_a)
            assert len(sub_b.drain()) == 0  # nothing new after unregister
            assert dropped_results == 3  # ops got the first half before leaving
            # The full run matches the query evaluated alone (finish() also
            # restarts lane windowing, like StreamSession.finish()).
            expected = isolated_answers(traffic_query("city"), stream[:90]) + isolated_answers(
                traffic_query("city"), stream[90:]
            )
            assert [r.answers for r in first_half_a + second_half_a] == expected

    def test_last_unregister_empties_the_server(self):
        with QueryServer() as server:
            server.register(traffic_query("city"))
            server.unregister("city/jams")
            assert server.sharing_summary()["lanes"] == 0.0
            assert server.push(traffic_stream(40)) == 0  # no lanes accept


class TestFairnessIntegration:
    def test_light_tenant_served_alongside_heavy(self):
        heavy = traffic_query("heavy", size=10, weight=100.0)
        light = StandingQuery(
            tenant="light",
            name="anomalies",
            program=iot_module.iot_program(),
            window=CountWindow(size=10),
            input_predicates=iot_module.INPUT_PREDICATES,
            weight=0.01,
        )
        stream = []
        for t_item, i_item in zip(traffic_stream(120), iot_stream(120)):
            stream += [t_item, i_item]
        with QueryServer(backend=ThreadPoolBackend(max_workers=2)) as server:
            server.register(heavy)
            server.register(light)
            server.push(stream)
            server.finish()
            stats = server.tenant_stats
            assert stats["heavy"].windows_completed == 12
            assert stats["light"].windows_completed == 12
            assert stats["light"].p50_latency_seconds >= 0.0


class TestMetricsEndpoint:
    def test_prometheus_families_served_over_http(self):
        stream = traffic_stream(60)
        with QueryServer(backend=ThreadPoolBackend(max_workers=2)) as server:
            server.register(traffic_query("city"))
            server.push(stream)
            server.finish()
            endpoint = server.serve_metrics()
            try:
                with urllib.request.urlopen(endpoint.url) as response:
                    assert response.status == 200
                    assert "version=0.0.4" in response.headers["Content-Type"]
                    body = response.read().decode("utf-8")
                health_url = endpoint.url.replace("/metrics", "/healthz")
                with urllib.request.urlopen(health_url) as response:
                    health = json.loads(response.read())
                missing_url = endpoint.url.replace("/metrics", "/nope")
                with pytest.raises(urllib.error.HTTPError) as error:
                    urllib.request.urlopen(missing_url)
                assert error.value.code == 404
            finally:
                endpoint.stop()
        # Every counter family the issue names: tenant, session, backend,
        # and cache statistics.
        for family in (
            'streamrule_tenant_windows_dispatched_total{tenant="city"}',
            'streamrule_tenant_windows_completed_total{tenant="city"}',
            "streamrule_tenant_latency_seconds",
            "streamrule_queries_registered 1",
            "streamrule_session_windows_dispatched",
            "streamrule_backend_queue_depth",
            "streamrule_grounding_cache_hits",
            "streamrule_scheduler_budget_trims_total",
        ):
            assert family in body, family
        assert health["status"] == "ok" and health["queries"] == 1
        # Valid exposition format: HELP/TYPE pairs precede their samples.
        self._assert_exposition_valid(body)

    @staticmethod
    def _assert_exposition_valid(body):
        import re

        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.+eE]+|NaN|[+-]Inf)$")
        typed = set()
        for line in body.strip().splitlines():
            if line.startswith("# TYPE "):
                name, kind = line.split()[2], line.split()[3]
                assert kind in ("counter", "gauge")
                typed.add(name)
            elif not line.startswith("#"):
                assert sample.match(line), line
                assert line.split("{")[0].split(" ")[0] in typed, line

    def test_render_prometheus_escapes_labels(self):
        from repro.streamrule.server import MetricFamily

        family = MetricFamily("f_total", "counter", 'help with "quotes"\nand newline')
        family.add(1.0, tenant='quo"te\nnl')
        text = render_prometheus([family])
        assert '\\"' in text and "\\n" in text
        assert text.endswith("\n")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
