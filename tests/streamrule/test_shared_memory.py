"""Tests for the shared-memory rings and the SharedMemoryBackend.

The ring/channel layer is tested in-process (a ring does not care who its
writer is); the backend tests spawn real worker processes and cover the
equivalence, crash-fallback, and traffic-accounting contracts.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from multiprocessing.shared_memory import SharedMemory

import pytest

from repro.asp.syntax.parser import parse_program
from repro.streamrule.backends import InlineBackend, SharedMemoryBackend
from repro.streamrule.errors import BackendConnectionError
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession
from repro.streamrule.shm import DEFAULT_RING_CAPACITY, ShmRing, ShmSlot
from repro.streamrule.work import WorkItem
from tests.conftest import make_atom

CHOICE_PROGRAM = """\
picked(X) :- item(X), not dropped(X).
dropped(X) :- item(X), not picked(X).
"""


def choice_reasoner():
    return Reasoner(parse_program(CHOICE_PROGRAM), input_predicates=["item"])


def work_item(count=3, track=0):
    return WorkItem(facts=tuple(make_atom("item", index) for index in range(count)), track=track)


@pytest.fixture
def ring():
    shm = SharedMemory(create=True, size=ShmRing.CURSOR_BYTES + 64)
    try:
        yield ShmRing(shm, 0, 64, threading.Lock())
    finally:
        shm.close()
        shm.unlink()


class TestShmRing:
    def test_fifo_round_trip(self, ring):
        assert ring.try_read() is None
        assert ring.try_write(b"first")
        assert ring.try_write(b"second")
        assert ring.try_read() == b"first"
        assert ring.try_read() == b"second"
        assert ring.try_read() is None

    def test_wraparound_preserves_frames(self, ring):
        # Drive the cursors far past the capacity so frames straddle the
        # data-region edge in both the length prefix and the payload.
        for round_number in range(50):
            payload = bytes([round_number % 256]) * (round_number % 23 + 1)
            assert ring.try_write(payload)
            assert ring.try_read() == payload

    def test_full_ring_refuses_writes_until_read(self, ring):
        payload = b"x" * 28  # 2 frames of 32 bytes fill the 64-byte ring
        assert ring.try_write(payload)
        assert ring.try_write(payload)
        assert not ring.try_write(b"y")
        assert ring.try_read() == payload
        assert ring.try_write(b"y")

    def test_never_fitting_frame_is_rejected_loudly(self, ring):
        assert not ring.fits(65)
        with pytest.raises(ValueError):
            ring.try_write(b"z" * 65)

    def test_empty_payload_frames(self, ring):
        assert ring.try_write(b"")
        assert ring.try_read() == b""


class TestShmSlot:
    def test_round_trip_matches_inline(self):
        item = work_item()
        slot = ShmSlot(0, pickle.dumps(choice_reasoner()))
        try:
            over_shm = slot.roundtrip(item.thinned())
        finally:
            slot.close()
        inline = InlineBackend()
        inline.start(choice_reasoner())
        local = inline.submit(item).result()
        assert set(over_shm.answers) == set(local.answers)

    def test_steady_state_windows_sync_no_new_symbols(self):
        slot = ShmSlot(0, pickle.dumps(choice_reasoner()))
        try:
            slot.roundtrip(work_item().thinned())
            first_syncs = slot.stats.symbols_out
            slot.roundtrip(work_item().thinned())  # identical facts: all interned
            assert first_syncs == 1
            assert slot.stats.symbols_out == 1
            assert slot.stats.items == 2
        finally:
            slot.close()

    def test_worker_side_exception_propagates_and_slot_survives(self):
        slot = ShmSlot(0, pickle.dumps(choice_reasoner()))
        try:
            bad = WorkItem(facts=("not a fact",))  # type: ignore[arg-type]
            with pytest.raises(TypeError):
                slot.roundtrip(bad)
            assert slot.roundtrip(work_item().thinned()).answers
        finally:
            slot.close()

    def test_oversize_message_takes_the_pipe_side_door(self):
        # A ring too small for the pickled symbol sync (and the pickled
        # result) forces the oversize path; results must still be correct.
        slot = ShmSlot(0, pickle.dumps(choice_reasoner()), capacity=64)
        try:
            result = slot.roundtrip(work_item(count=4).thinned())
            assert result.answers
            assert slot.stats.oversizes > 0
        finally:
            slot.close()

    def test_dead_worker_raises_connection_error(self):
        slot = ShmSlot(0, pickle.dumps(choice_reasoner()))
        try:
            slot.kill()
            with pytest.raises(BackendConnectionError):
                slot.roundtrip(work_item().thinned())
        finally:
            slot.close()

    def test_close_is_idempotent_and_unlinks(self):
        slot = ShmSlot(0, pickle.dumps(choice_reasoner()))
        name = slot._shm.name
        slot.close()
        slot.close()
        with pytest.raises(FileNotFoundError):
            SharedMemory(name=name)


class TestSharedMemoryBackend:
    def test_capability_flags(self):
        backend = SharedMemoryBackend()
        assert backend.is_remote is True
        assert backend.uses_placement is True
        assert backend.supports_delta is True
        assert backend.pipelined is True

    def test_submit_round_trip(self):
        with SharedMemoryBackend(max_workers=1) as backend:
            backend.start(choice_reasoner())
            result = backend.submit(work_item()).result()
        assert result.answers

    def test_statistics_survive_close(self):
        backend = SharedMemoryBackend(max_workers=1)
        backend.start(choice_reasoner())
        backend.submit(work_item()).result()
        live = backend.shm_statistics()
        backend.close()
        assert live["items"] == 1.0
        assert backend.shm_statistics()["items"] == 1.0
        assert backend.slots is None

    def test_worker_crash_falls_back_inline(self):
        reasoner = choice_reasoner()
        backend = SharedMemoryBackend(max_workers=1)
        window = [make_atom("item", index) for index in range(4)]
        with StreamSession(reasoner, backend=backend) as session:
            healthy = session.evaluate_window(window)
            assert session.fallbacks == 0
            backend.drop_worker(0)
            degraded = session.evaluate_window(window)
            assert session.fallbacks > 0
        assert {frozenset(a) for a in healthy.answers} == {frozenset(a) for a in degraded.answers}

    def test_default_ring_capacity_is_sensible(self):
        assert SharedMemoryBackend().ring_capacity == DEFAULT_RING_CAPACITY
