"""Wire-protocol guarantees: WorkItem/ReasonerResult survive pickling.

The loopback-socket backend (and, later, real multi-machine sharding)
depends on three properties of the partition/combine protocol:

1. round-trip fidelity -- a pickled ``WorkItem`` / ``ReasonerResult``
   deserializes to an equivalent value,
2. bounded payloads -- the wire form grows linearly in the fact count and
   never ships the window delta twice,
3. determinism across interpreters -- pickle bytes and placement decisions
   must not depend on ``PYTHONHASHSEED``, or a parent and a spawned worker
   would disagree about routing.
"""

from __future__ import annotations

import hashlib
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.work import WorkItem
from tests.conftest import make_atom

REPOSITORY_SOURCE = Path(__file__).resolve().parents[2] / "src"


def traffic_stream(length, seed=13):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def round_trip(value):
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


class TestRoundTrip:
    def test_work_item_round_trip(self):
        item = WorkItem(
            facts=tuple(make_atom("very_slow_speed", index) for index in range(5)),
            track=3,
            epoch=17,
            incremental=True,
        )
        clone = round_trip(item)
        assert clone == item
        assert clone.track == 3 and clone.epoch == 17 and clone.wants_incremental

    def test_work_item_with_triples_round_trip(self):
        item = WorkItem(facts=tuple(traffic_stream(20)), track=1)
        clone = round_trip(item)
        assert clone.facts == item.facts
        assert clone.signature == item.signature

    def test_reasoner_result_round_trip(self):
        reasoner = Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)
        result = reasoner.reason_item(WorkItem(facts=tuple(traffic_stream(60))))
        clone = round_trip(result)
        assert set(clone.answers) == set(result.answers)
        assert clone.metrics.window_size == result.metrics.window_size
        assert clone.metrics.answer_count == result.metrics.answer_count


class TestPayloadBounds:
    def test_pickle_size_grows_linearly_with_bounded_per_fact_cost(self):
        sizes = {}
        for count in (10, 100, 400):
            item = WorkItem(facts=tuple(traffic_stream(count)))
            sizes[count] = len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
        # Generous envelope: every fact must cost well under 200 bytes on
        # the wire, and the fixed overhead must stay under 1 KiB.
        for count, size in sizes.items():
            assert size < 1024 + 200 * count, f"{count} facts pickled to {size} bytes"
        # Linearity: the marginal per-fact cost is stable (no quadratic blowup).
        marginal_small = (sizes[100] - sizes[10]) / 90
        marginal_large = (sizes[400] - sizes[100]) / 300
        assert marginal_large < 2.5 * marginal_small

    def test_thinned_item_never_ships_the_delta(self):
        stream = traffic_stream(200)
        [delta] = [d for d in CountWindow(size=150, slide=50).deltas(stream) if d.index == 1]
        fat = WorkItem(facts=tuple(delta.window), delta=delta)
        thin = fat.thinned()
        assert thin.delta is None
        assert thin.wants_incremental == fat.wants_incremental
        fat_size = len(pickle.dumps(fat, protocol=pickle.HIGHEST_PROTOCOL))
        thin_size = len(pickle.dumps(thin, protocol=pickle.HIGHEST_PROTOCOL))
        assert thin_size < fat_size  # the expired/arrived payload is gone
        # And the incremental intent survives the wire.
        assert round_trip(thin).wants_incremental

    def test_thinning_without_delta_is_identity(self):
        item = WorkItem(facts=tuple(traffic_stream(10)))
        assert item.thinned() is item


_DETERMINISM_SCRIPT = """
import hashlib, pickle, sys
sys.path.insert(0, {source!r})
from repro.streamrule.placement import ConsistentHashPlacement, PinnedPlacement
from repro.streamrule.work import WorkItem
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant

items = [
    WorkItem(
        facts=tuple(Atom(f"predicate_{{index}}", (Constant(value),)) for value in range(3)),
        track=index,
        epoch=index * 2,
    )
    for index in range(25)
]
payload = pickle.dumps(items, protocol=4)
placement = ConsistentHashPlacement()
slots = [placement.slot(item, 5) for item in items]
pinned = [PinnedPlacement().slot(item, 5) for item in items]
print(hashlib.sha256(payload).hexdigest())
print(slots)
print(pinned)
"""


class TestHashSeedDeterminism:
    @pytest.mark.slow
    def test_pickle_bytes_and_placement_are_seed_independent(self):
        """Spawned interpreters with different hash seeds must agree byte-for-byte."""
        outputs = []
        script = _DETERMINISM_SCRIPT.format(source=str(REPOSITORY_SOURCE))
        for seed in ("0", "1", "4242"):
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=120,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            assert completed.returncode == 0, completed.stderr
            outputs.append(completed.stdout)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_signature_is_hash_free(self):
        item = WorkItem(facts=(make_atom("b", 1), make_atom("a", 2), make_atom("b", 3)))
        assert item.signature == "a|b"  # sorted distinct predicates, no hashing
        digest = hashlib.sha256(item.signature.encode()).hexdigest()
        assert digest == hashlib.sha256(b"a|b").hexdigest()
