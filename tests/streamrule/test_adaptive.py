"""The AIMD in-flight controller: scripted traces, clamps, session wiring.

:class:`~repro.streamrule.adaptive.AdaptiveInflightController` is
deliberately clock-free -- every input arrives through
``observe_gather(...)`` -- so its dynamics are testable as plain scripted
traces: a run of clean gathers must ramp the target additively, one
congestion signal must cut it multiplicatively, and no trace whatsoever may
push the target above the ceiling or starve it below the floor (the
hypothesis property at the bottom).  The second half pins the session
wiring (``max_inflight="adaptive"``, ingestion mirroring) and the
idle-drain fast path: ``results(wait=False)`` on a session with nothing in
flight must return without touching the gather machinery at all -- no
backend probe, no stall accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.adaptive import DEFAULT_CEILING, AdaptiveInflightController
from repro.streamrule.backends import InlineBackend, ThreadPoolBackend
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession


def traffic_stream(length, seed=23):
    config = SyntheticStreamConfig(
        window_size=length, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


def traffic_reasoner():
    return Reasoner(traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES)


class TestScriptedTraces:
    def test_clean_gathers_ramp_additively_to_the_ceiling(self):
        controller = AdaptiveInflightController(initial=4, ceiling=8)
        trajectory = [controller.observe_gather() for _ in range(10)]
        # Monotone +1 per clean gather until the ceiling, then flat.
        assert trajectory == [5, 6, 7, 8, 8, 8, 8, 8, 8, 8]
        assert controller.increases == 4  # only actual raises count
        assert controller.backoffs == 0

    def test_stall_cuts_multiplicatively(self):
        controller = AdaptiveInflightController(initial=8, ceiling=16)
        assert controller.observe_gather(stalled=True) == 4
        assert controller.observe_gather(stalled=True) == 2
        assert controller.observe_gather(stalled=True) == 1
        assert controller.backoffs == 3

    def test_fallback_counts_as_congestion(self):
        controller = AdaptiveInflightController(initial=8)
        assert controller.observe_gather(failed=True) == 4
        assert controller.backoffs == 1

    def test_rising_backend_queue_counts_as_congestion(self):
        controller = AdaptiveInflightController(
            initial=4, ceiling=64, depth_factor=2.0, ewma_alpha=1.0, warmup=3
        )
        # A steady depth -- however high -- is the baseline, not congestion:
        # a session sharing its backend with hundreds of others sees their
        # load in every probe.
        for _ in range(4):
            controller.observe_gather(queue_depth=40)
        assert controller.backoffs == 0
        before = controller.target
        # The depth *jumping* above its smoothed history is congestion.
        controller.observe_gather(queue_depth=100)
        assert controller.backoffs == 1
        assert controller.target < before

    def test_congested_depth_does_not_poison_the_ewma(self):
        controller = AdaptiveInflightController(initial=4, ewma_alpha=1.0, warmup=1)
        controller.observe_gather(queue_depth=10)
        controller.observe_gather(queue_depth=10)
        baseline = controller.depth_ewma
        controller.observe_gather(queue_depth=500, stalled=True)
        assert controller.depth_ewma == baseline

    def test_latency_jump_counts_as_congestion_after_warmup(self):
        controller = AdaptiveInflightController(
            initial=2, ceiling=64, latency_factor=2.0, ewma_alpha=1.0, warmup=3
        )
        for _ in range(4):  # establish the EWMA past the warmup
            controller.observe_gather(latency_seconds=0.010)
        assert controller.backoffs == 0
        before = controller.target
        controller.observe_gather(latency_seconds=0.100)  # 10x jump
        assert controller.backoffs == 1
        assert controller.target < before

    def test_congested_latency_does_not_poison_the_ewma(self):
        controller = AdaptiveInflightController(initial=4, ewma_alpha=1.0, warmup=1)
        controller.observe_gather(latency_seconds=0.010)
        baseline = controller.latency_ewma_seconds
        # A stalled gather's latency measures queueing, not capacity: the
        # EWMA must ignore it, or the jump detector calibrates itself to
        # the congestion it is meant to detect.
        controller.observe_gather(latency_seconds=5.0, stalled=True)
        assert controller.latency_ewma_seconds == baseline

    def test_floor_holds_under_sustained_congestion(self):
        controller = AdaptiveInflightController(initial=4, floor=2)
        for _ in range(20):
            controller.observe_gather(stalled=True)
        assert controller.target == 2
        assert controller.backoffs == 20  # every congestion event counts

    def test_recovery_after_backoff(self):
        controller = AdaptiveInflightController(initial=8, ceiling=8)
        controller.observe_gather(stalled=True)  # cut to 4
        trajectory = [controller.observe_gather() for _ in range(6)]
        assert trajectory == [5, 6, 7, 8, 8, 8]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdaptiveInflightController(floor=0)
        with pytest.raises(ValueError):
            AdaptiveInflightController(floor=8, ceiling=4)
        with pytest.raises(ValueError):
            AdaptiveInflightController(initial=99, ceiling=8)
        with pytest.raises(ValueError):
            AdaptiveInflightController(decrease=1.0)
        with pytest.raises(ValueError):
            AdaptiveInflightController(increase=0.0)
        with pytest.raises(ValueError):
            AdaptiveInflightController(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveInflightController(depth_factor=1.0)

    def test_default_initial_is_clamped_into_the_band(self):
        assert AdaptiveInflightController().target == 4
        assert AdaptiveInflightController(ceiling=2).target == 2
        assert AdaptiveInflightController(floor=6).target == 6


class TestBoundednessProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        floor=st.integers(min_value=1, max_value=4),
        ceiling_extra=st.integers(min_value=0, max_value=12),
        events=st.lists(
            st.tuples(
                st.booleans(),  # stalled
                st.booleans(),  # failed
                st.integers(min_value=0, max_value=64),  # queue depth
                st.floats(min_value=0.0, max_value=1.0),  # latency
            ),
            max_size=60,
        ),
    )
    def test_target_never_leaves_the_floor_ceiling_band(self, floor, ceiling_extra, events):
        """No observation sequence starves the pipe or overruns the ceiling."""
        ceiling = floor + ceiling_extra
        controller = AdaptiveInflightController(floor=floor, ceiling=ceiling)
        for stalled, failed, depth, latency in events:
            target = controller.observe_gather(
                latency_seconds=latency, queue_depth=depth, stalled=stalled, failed=failed
            )
            assert floor <= target <= ceiling
            assert controller.target == target


class TestSessionWiring:
    def test_adaptive_policy_string_builds_a_controller(self):
        session = StreamSession(traffic_reasoner(), max_inflight="adaptive")
        assert isinstance(session.inflight_controller, AdaptiveInflightController)
        assert session.inflight_controller.ceiling == DEFAULT_CEILING
        assert session.max_inflight is None

    def test_unknown_policy_string_is_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            StreamSession(traffic_reasoner(), max_inflight="turbo")

    def test_a_controller_instance_is_adopted(self):
        controller = AdaptiveInflightController(initial=2, ceiling=4)
        session = StreamSession(traffic_reasoner(), max_inflight=controller)
        assert session.inflight_controller is controller
        assert session.ingestion.inflight_target == 2

    def test_adaptive_on_a_non_pipelined_backend_degenerates_to_one(self):
        session = StreamSession(
            traffic_reasoner(), backend=InlineBackend(simulated=False), max_inflight="adaptive"
        )
        assert session.effective_max_inflight() == 1

    def test_adaptive_bound_follows_the_controller(self):
        controller = AdaptiveInflightController(initial=4, ceiling=8)
        with StreamSession(
            traffic_reasoner(), backend=ThreadPoolBackend(max_workers=2), max_inflight=controller
        ) as session:
            assert session.effective_max_inflight() == 4
            controller.observe_gather(stalled=True)
            assert session.effective_max_inflight() == 2

    def test_ingestion_mirrors_the_controller_counters(self):
        with StreamSession(
            traffic_reasoner(),
            window=CountWindow(size=10, slide=10),
            backend=ThreadPoolBackend(max_workers=2),
            max_inflight="adaptive",
        ) as session:
            session.push(traffic_stream(60))
            session.finish()
            list(session.results())
            controller = session.inflight_controller
            assert session.ingestion.inflight_target == controller.target
            assert session.ingestion.aimd_increases == controller.increases
            assert session.ingestion.aimd_backoffs == controller.backoffs
            assert controller.increases + controller.backoffs > 0

    def test_fixed_bound_sessions_keep_the_aimd_counters_at_zero(self):
        with StreamSession(
            traffic_reasoner(),
            window=CountWindow(size=10, slide=10),
            backend=ThreadPoolBackend(max_workers=2),
            max_inflight=4,
        ) as session:
            session.push(traffic_stream(40))
            session.finish()
            list(session.results())
            assert session.ingestion.inflight_target == 0
            assert session.ingestion.aimd_increases == 0
            assert session.ingestion.aimd_backoffs == 0


class _ProbeCountingBackend(ThreadPoolBackend):
    """A pipelined backend that counts ``queue_depth`` probes."""

    name = "probe-counting"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.depth_probes = 0

    def queue_depth(self) -> int:
        self.depth_probes += 1
        return super().queue_depth()


class TestIdleDrainFastPath:
    """``results(wait=False)`` with nothing to gather is free of side effects."""

    def test_idle_drain_touches_no_gather_machinery(self):
        backend = _ProbeCountingBackend(max_workers=2)
        with StreamSession(
            traffic_reasoner(),
            window=CountWindow(size=10, slide=10),
            backend=backend,
            max_inflight="adaptive",
        ) as session:
            session.push(traffic_stream(40))
            session.finish()
            emitted = list(session.results())
            assert emitted
            stalls_before = session.ingestion.backpressure_stalls
            probes_before = backend.depth_probes
            # An idle poll loop -- the serving shape between bursts -- must
            # not enter the gather path: no stall accounting, no backend
            # probes, nothing for the adaptive controller to misread.
            for _ in range(50):
                assert list(session.results(wait=False)) == []
            assert session.ingestion.backpressure_stalls == stalls_before
            assert backend.depth_probes == probes_before

    def test_nonblocking_drain_stops_at_the_first_unfinished_window(self):
        backend = _ProbeCountingBackend(max_workers=1)
        reasoner = traffic_reasoner()
        with StreamSession(
            reasoner, window=CountWindow(size=10, slide=10), backend=backend, max_inflight=8
        ) as session:
            session.push(traffic_stream(40))
            drained = list(session.results(wait=False))
            finished = len(drained)
            session.finish()
            rest = list(session.results())
            indexes = [s.window_index for s in drained + rest]
            assert indexes == sorted(indexes)
            assert finished + len(rest) == len(indexes)
