"""Unit tests for the reasoner R."""

import pytest

from repro.programs.traffic import DERIVED_PREDICATES, INPUT_PREDICATES
from repro.streaming.triples import Triple
from repro.streamrule.reasoner import Reasoner
from tests.conftest import make_atom


class TestDefaults:
    def test_default_input_predicates_are_edb(self, program_p):
        reasoner = Reasoner(program_p)
        assert reasoner.input_predicates == set(INPUT_PREDICATES)

    def test_default_output_predicates_are_idb(self, program_p):
        reasoner = Reasoner(program_p)
        assert reasoner.output_predicates == set(DERIVED_PREDICATES)


class TestReasoning:
    def test_motivating_example_events(self, event_reasoner_p, motivating_window):
        result = event_reasoner_p.reason(motivating_window)
        assert len(result.answers) == 1
        rendered = {str(atom) for atom in result.answers[0]}
        assert rendered == {"car_fire(dangan)", "give_notification(dangan)"}

    def test_accepts_triples_as_input(self, event_reasoner_p):
        window = [
            Triple("newcastle", "average_speed", 10),
            Triple("newcastle", "car_number", 55),
        ]
        result = event_reasoner_p.reason(window)
        rendered = {str(atom) for atom in result.answers[0]}
        assert "traffic_jam(newcastle)" in rendered

    def test_mixed_triples_and_atoms(self, event_reasoner_p):
        window = [Triple("newcastle", "average_speed", 10), make_atom("car_number", "newcastle", 55)]
        result = event_reasoner_p.reason(window)
        assert result.satisfiable

    def test_rejects_unknown_item_types(self, event_reasoner_p):
        with pytest.raises(TypeError):
            event_reasoner_p.reason(["not a triple"])

    def test_empty_window(self, event_reasoner_p):
        result = event_reasoner_p.reason([])
        assert len(result.answers) == 1
        assert result.answers[0] == frozenset()

    def test_projection_to_all_atoms_when_disabled(self, program_p, motivating_window):
        reasoner = Reasoner(program_p, output_predicates=[])
        result = reasoner.reason(motivating_window)
        # No projection: the answer contains the input facts as well.
        assert make_atom("average_speed", "newcastle", 10) in result.answers[0]

    def test_atoms_of_helper(self, event_reasoner_p, motivating_window):
        result = event_reasoner_p.reason(motivating_window)
        assert result.atoms_of("car_fire") == {make_atom("car_fire", "dangan")}
        assert result.atoms_of("traffic_jam") == set()


class TestMetrics:
    def test_latency_breakdown_is_populated(self, event_reasoner_p, small_traffic_window):
        result = event_reasoner_p.reason(small_traffic_window)
        metrics = result.metrics
        assert metrics.window_size == len(small_traffic_window)
        assert metrics.latency_seconds > 0
        assert metrics.breakdown.grounding_seconds > 0
        assert metrics.answer_count == len(result.answers)
        assert metrics.partition_sizes == [len(small_traffic_window)]

    def test_latency_includes_transformation(self, event_reasoner_p, small_traffic_window):
        result = event_reasoner_p.reason(small_traffic_window)
        breakdown = result.metrics.breakdown
        assert result.metrics.latency_seconds == pytest.approx(breakdown.total_seconds)

    def test_max_models_limit(self, program_p, motivating_window):
        reasoner = Reasoner(program_p, max_models=1)
        assert len(reasoner.reason(motivating_window).answers) == 1
