"""The query server over *real* worker daemons (the CI ``query-server`` job).

Three tenants -- a traffic desk, a fraud desk, and an IoT monitor -- are
hosted on one :class:`QueryServer` whose backend is a
:class:`TcpBackend` over two ``python -m repro.streamrule.worker`` daemons
(from ``STREAMRULE_WORKERS``, or self-spawned when run locally).  Asserted:

* every tenant's projected answers match its isolated inline session,
* nothing fell back to inline evaluation (the fleet answered),
* the Prometheus endpoint serves every counter family, now including the
  wire statistics that only exist on a TCP backend.
"""

from __future__ import annotations

import os
import urllib.request

import pytest

from repro.programs import fraud as fraud_module
from repro.programs import iot as iot_module
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.window import CountWindow
from repro.streamrule.backends import TcpBackend
from repro.streamrule.server import QueryServer, StandingQuery
from repro.streamrule.worker import spawn_local_workers

from tests.streamrule.conftest import worker_security_kwargs
from tests.streamrule.test_query_server import isolated_answers

pytestmark = pytest.mark.slow  # spawns worker subprocesses when unconfigured


@pytest.fixture(scope="module")
def worker_endpoints():
    """Two live worker daemons: from ``STREAMRULE_WORKERS`` or self-spawned."""
    configured = os.environ.get("STREAMRULE_WORKERS")
    if configured:
        yield [endpoint.strip() for endpoint in configured.split(",") if endpoint.strip()]
        return
    workers = spawn_local_workers(2)
    try:
        yield [worker.endpoint for worker in workers]
    finally:
        for worker in workers:
            worker.terminate()


def three_tenants():
    return [
        StandingQuery(
            tenant="city",
            name="jams",
            program=traffic_program(),
            window=CountWindow(size=30, slide=15),
            input_predicates=INPUT_PREDICATES,
            output_predicates=EVENT_PREDICATES,
        ),
        StandingQuery(
            tenant="fraud_desk",
            name="alerts",
            program=fraud_module.fraud_program(),
            window=CountWindow(size=24),
            input_predicates=fraud_module.INPUT_PREDICATES,
            output_predicates=fraud_module.ALERT_PREDICATES,
        ),
        StandingQuery(
            tenant="plant",
            name="anomalies",
            program=iot_module.iot_program(),
            window=CountWindow(size=24),
            input_predicates=iot_module.INPUT_PREDICATES,
            output_predicates=iot_module.ANOMALY_PREDICATES,
        ),
    ]


def combined_stream(length_per_scenario=96):
    streams = [
        generate_window(SyntheticStreamConfig(
            window_size=length_per_scenario, input_predicates=INPUT_PREDICATES,
            scheme="traffic", seed=31,
        )),
        generate_window(SyntheticStreamConfig(
            window_size=length_per_scenario, input_predicates=fraud_module.INPUT_PREDICATES,
            scheme="fraud", seed=32,
        )),
        generate_window(SyntheticStreamConfig(
            window_size=length_per_scenario, input_predicates=iot_module.INPUT_PREDICATES,
            scheme="iot", seed=33,
        )),
    ]
    combined = []
    for index in range(length_per_scenario):
        for stream in streams:
            combined.append(stream[index])
    return combined


class TestQueryServerOverDaemons:
    def test_three_tenants_over_the_fleet(self, worker_endpoints):
        queries = three_tenants()
        stream = combined_stream()
        server = QueryServer(backend=TcpBackend(worker_endpoints, **worker_security_kwargs()))
        try:
            subs = {q.key: server.register(q) for q in queries}
            server.push(stream)
            server.finish()
            assert server._session is not None and server._session.fallbacks == 0
            for query in queries:
                got = [result.answers for result in subs[query.key].drain()]
                assert got == isolated_answers(query, stream), query.key
            endpoint = server.serve_metrics()
            try:
                with urllib.request.urlopen(endpoint.url) as response:
                    assert response.status == 200
                    body = response.read().decode("utf-8")
            finally:
                endpoint.stop()
        finally:
            server.close()
        # Every counter family: per-tenant, session ingestion, backend
        # queue, wire transport (TCP only), and grounding cache.
        for family in (
            'streamrule_tenant_windows_dispatched_total{tenant="city"}',
            'streamrule_tenant_windows_completed_total{tenant="fraud_desk"}',
            'streamrule_tenant_answer_sets_total{tenant="plant"}',
            "streamrule_tenant_latency_seconds",
            "streamrule_queries_registered 3",
            "streamrule_lanes_active 3",
            "streamrule_session_windows_dispatched",
            "streamrule_session_windows_gathered",
            "streamrule_backend_queue_depth",
            "streamrule_wire_",
            "streamrule_grounding_cache_hits",
        ):
            assert family in body, family


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
