"""Unit tests for the parallel reasoner PR."""

import pytest

from repro.core.partitioner import DependencyPartitioner, RandomPartitioner
from repro.core.accuracy import mean_accuracy
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES
from repro.streamrule.parallel import ExecutionMode, ParallelReasoner
from repro.streamrule.reasoner import Reasoner


@pytest.fixture
def pr_dep(event_reasoner_p, plan_p):
    return ParallelReasoner(event_reasoner_p, DependencyPartitioner(plan_p))


class TestDependencyPartitionedReasoning:
    def test_motivating_example_is_answered_correctly(self, pr_dep, motivating_window):
        result = pr_dep.reason(motivating_window)
        assert len(result.answers) == 1
        assert {str(atom) for atom in result.answers[0]} == {"car_fire(dangan)", "give_notification(dangan)"}

    def test_answers_match_unpartitioned_reasoner(self, pr_dep, event_reasoner_p, small_traffic_window):
        reference = event_reasoner_p.reason(small_traffic_window)
        partitioned = pr_dep.reason(small_traffic_window)
        assert mean_accuracy(partitioned.answers, reference.answers) == 1.0

    def test_partition_results_are_exposed(self, pr_dep, motivating_window):
        result = pr_dep.reason(motivating_window)
        assert len(result.partition_results) == 2
        assert sum(r.metrics.window_size for r in result.partition_results) == len(motivating_window)

    def test_metrics_partition_sizes(self, pr_dep, motivating_window):
        result = pr_dep.reason(motivating_window)
        assert sorted(result.metrics.partition_sizes) == [3, 3]
        assert result.metrics.duplication_ratio == 0.0

    def test_duplication_ratio_with_p_prime_plan(self, program_p_prime, plan_p_prime, motivating_window):
        reasoner = Reasoner(program_p_prime, INPUT_PREDICATES, EVENT_PREDICATES)
        parallel = ParallelReasoner(reasoner, DependencyPartitioner(plan_p_prime))
        result = parallel.reason(motivating_window)
        # car_number(newcastle, 55) is copied into both partitions.
        assert result.metrics.duplication_ratio == pytest.approx(1 / 6)


class TestRandomPartitionedReasoning:
    def test_random_partitioning_can_produce_wrong_events(self, event_reasoner_p, motivating_window):
        # With the seed fixed so the window of Section II-A is split badly,
        # the traffic light is separated from the speed/count readings and a
        # spurious traffic jam is reported -- the paper's motivating anomaly.
        spurious_found = False
        for seed in range(30):
            parallel = ParallelReasoner(event_reasoner_p, RandomPartitioner(2, seed=seed))
            result = parallel.reason(motivating_window)
            atoms = {str(atom) for answer in result.answers for atom in answer}
            if "traffic_jam(newcastle)" in atoms:
                spurious_found = True
                break
        assert spurious_found

    def test_random_partitioning_accuracy_not_above_dependency(
        self, event_reasoner_p, plan_p, small_traffic_window
    ):
        reference = event_reasoner_p.reason(small_traffic_window)
        dep = ParallelReasoner(event_reasoner_p, DependencyPartitioner(plan_p)).reason(small_traffic_window)
        ran = ParallelReasoner(event_reasoner_p, RandomPartitioner(3, seed=5)).reason(small_traffic_window)
        dep_accuracy = mean_accuracy(dep.answers, reference.answers)
        ran_accuracy = mean_accuracy(ran.answers, reference.answers)
        assert dep_accuracy == 1.0
        assert ran_accuracy <= dep_accuracy


class TestExecutionModes:
    def test_serial_mode_sums_latencies(self, event_reasoner_p, plan_p, motivating_window):
        simulated = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.SIMULATED_PARALLEL
        ).reason(motivating_window)
        serial = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.SERIAL
        ).reason(motivating_window)
        # Serial latency cannot be smaller than the simulated-parallel latency
        # of the same window (it is the sum rather than the max).
        assert serial.metrics.breakdown.reasoning_seconds >= 0
        assert simulated.answers == serial.answers

    def test_thread_mode_produces_same_answers(self, event_reasoner_p, plan_p, motivating_window):
        threaded = ParallelReasoner(
            event_reasoner_p, DependencyPartitioner(plan_p), mode=ExecutionMode.THREADS, max_workers=2
        ).reason(motivating_window)
        assert {str(a) for ans in threaded.answers for a in ans} == {
            "car_fire(dangan)",
            "give_notification(dangan)",
        }

    def test_empty_window(self, pr_dep):
        result = pr_dep.reason([])
        assert result.metrics.window_size == 0
        assert result.metrics.duplication_ratio == 0.0
