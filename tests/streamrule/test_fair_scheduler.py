"""The fairness scheduler: quotas, weighted shares, and no starvation.

The hypothesis tests state the scheduler's actual guarantees over arbitrary
interleavings rather than example traces: a greedy key cannot starve a
competitor (bounded service delay), and no key ever exceeds its quota of
the in-flight budget, whatever the enqueue/complete pattern.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streamrule.server import FairScheduler


class TestBasics:
    def test_empty_scheduler_selects_nothing(self):
        scheduler = FairScheduler()
        assert scheduler.select(4) is None
        assert not scheduler.has_pending()

    def test_fifo_within_one_key(self):
        scheduler = FairScheduler()
        for item in ("a", "b", "c"):
            scheduler.enqueue("k", item)
        picked = [scheduler.select(8)[1] for _ in range(3)]
        assert picked == ["a", "b", "c"]

    def test_remove_returns_pending_items(self):
        scheduler = FairScheduler()
        scheduler.enqueue("k", 1)
        scheduler.enqueue("k", 2)
        assert scheduler.remove("k") == [1, 2]
        assert scheduler.select(4) is None
        assert scheduler.remove("k") == []  # idempotent

    def test_complete_on_unknown_key_is_noop(self):
        FairScheduler().complete("ghost")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(quota_fraction=0.0)
        with pytest.raises(ValueError):
            FairScheduler(starvation_rounds=0)
        with pytest.raises(ValueError):
            FairScheduler().configure("k", weight=0.0)


class TestQuota:
    def test_single_key_capped_at_quota(self):
        scheduler = FairScheduler(quota_fraction=0.5)
        for item in range(10):
            scheduler.enqueue("greedy", item)
        budget = 4
        dispatched = 0
        while scheduler.select(budget) is not None:
            dispatched += 1
        assert dispatched == scheduler.quota(budget) == 2

    def test_quota_is_at_least_one(self):
        scheduler = FairScheduler(quota_fraction=0.1)
        assert scheduler.quota(1) == 1
        scheduler.enqueue("k", "item")
        assert scheduler.select(1) is not None

    def test_complete_frees_quota_slots(self):
        scheduler = FairScheduler(quota_fraction=0.5)
        for item in range(4):
            scheduler.enqueue("k", item)
        assert scheduler.select(2) is not None
        assert scheduler.select(2) is None  # quota(2) == 1, slot held
        scheduler.complete("k")
        assert scheduler.select(2) is not None


class TestWeightedShares:
    def test_dispatches_track_weights(self):
        scheduler = FairScheduler(quota_fraction=1.0)
        scheduler.configure("heavy", weight=3.0)
        scheduler.configure("light", weight=1.0)
        counts = {"heavy": 0, "light": 0}
        for _ in range(400):
            scheduler.enqueue("heavy", object())
            scheduler.enqueue("light", object())
            key, _ = scheduler.select(4)
            scheduler.complete(key)
            counts[key] += 1
        share = counts["heavy"] / (counts["heavy"] + counts["light"])
        assert 0.70 <= share <= 0.80  # 3:1 weights -> ~75% of dispatches

    def test_equal_weights_alternate(self):
        scheduler = FairScheduler(quota_fraction=1.0)
        picks = []
        for _ in range(20):
            scheduler.enqueue("a", object())
            scheduler.enqueue("b", object())
            key, _ = scheduler.select(2)
            scheduler.complete(key)
            picks.append(key)
        assert abs(picks.count("a") - picks.count("b")) <= 2


class TestNoStarvation:
    @settings(max_examples=60, deadline=None)
    @given(
        greedy_weight=st.floats(min_value=1.0, max_value=100.0),
        victim_weight=st.floats(min_value=0.01, max_value=1.0),
        greedy_backlog=st.integers(min_value=1, max_value=30),
        budget=st.integers(min_value=1, max_value=8),
        starvation_rounds=st.integers(min_value=1, max_value=8),
    )
    def test_greedy_tenant_cannot_starve_victim(
        self, greedy_weight, victim_weight, greedy_backlog, budget, starvation_rounds
    ):
        """Whatever the weights and backlog, the victim is served within
        ``starvation_rounds + #keys + 1`` select rounds."""
        scheduler = FairScheduler(quota_fraction=1.0, starvation_rounds=starvation_rounds)
        scheduler.configure("greedy", weight=greedy_weight)
        scheduler.configure("victim", weight=victim_weight)
        for item in range(greedy_backlog):
            scheduler.enqueue("greedy", item)
        scheduler.enqueue("victim", "the-one-window")
        rounds_until_served = None
        for round_index in range(starvation_rounds + 3):
            # The greedy tenant keeps its backlog deep.
            scheduler.enqueue("greedy", object())
            picked = scheduler.select(budget)
            assert picked is not None
            key, _ = picked
            scheduler.complete(key)
            if key == "victim":
                rounds_until_served = round_index
                break
        assert rounds_until_served is not None
        assert rounds_until_served <= starvation_rounds + 2

    @settings(max_examples=60, deadline=None)
    @given(
        interleaving=st.lists(
            st.tuples(st.integers(min_value=0, max_value=3), st.booleans()),
            min_size=1,
            max_size=80,
        ),
        budget=st.integers(min_value=1, max_value=6),
        quota_fraction=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_quota_never_exceeded_under_arbitrary_interleavings(
        self, interleaving, budget, quota_fraction
    ):
        """No key holds more than ``quota(budget)`` slots, whatever the
        enqueue/select/complete interleaving."""
        scheduler = FairScheduler(quota_fraction=quota_fraction)
        in_flight = {key: 0 for key in range(4)}
        for key, also_select in interleaving:
            scheduler.enqueue(key, object())
            if also_select:
                picked = scheduler.select(budget)
                if picked is not None:
                    in_flight[picked[0]] += 1
                    assert in_flight[picked[0]] <= scheduler.quota(budget)
                    assert in_flight[picked[0]] == scheduler.in_flight_count(picked[0])
        # Drain: completes free slots, selects refill them, cap holds.
        for _ in range(200):
            for key in list(in_flight):
                if in_flight[key]:
                    scheduler.complete(key)
                    in_flight[key] -= 1
            picked = scheduler.select(budget)
            if picked is None:
                if not scheduler.has_pending():
                    break
                continue
            in_flight[picked[0]] += 1
            assert in_flight[picked[0]] <= scheduler.quota(budget)

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=5),
        rounds=st.integers(min_value=20, max_value=120),
    )
    def test_every_always_ready_key_is_served(self, weights, rounds):
        """With every key always ready, nobody is shut out entirely."""
        scheduler = FairScheduler(quota_fraction=1.0, starvation_rounds=4)
        for index, weight in enumerate(weights):
            scheduler.configure(index, weight=weight)
        counts = {index: 0 for index in range(len(weights))}
        for _ in range(rounds):
            for index in counts:
                scheduler.enqueue(index, object())
            key, _ = scheduler.select(len(weights))
            scheduler.complete(key)
            counts[key] += 1
        if rounds >= len(weights) * (4 + 2):
            assert all(count > 0 for count in counts.values())

    def test_boosts_are_counted(self):
        scheduler = FairScheduler(quota_fraction=1.0, starvation_rounds=2)
        scheduler.configure("heavy", weight=1000.0)
        scheduler.configure("light", weight=0.001)
        for _ in range(12):
            scheduler.enqueue("heavy", object())
            scheduler.enqueue("light", object())
            key, _ = scheduler.select(2)
            scheduler.complete(key)
        rows = {row.key: row for row in scheduler.snapshot()}
        assert rows["light"].dispatched > 0
        assert rows["light"].boosts > 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
