"""Shared fixtures/helpers for the streamrule test package.

The daemon-backed suites (tcp equivalence, asyncio, query server, chaos)
either spawn their own local workers or -- in CI's ``distributed`` /
``query-server`` / ``chaos`` jobs -- connect to pre-launched daemons named
by ``STREAMRULE_WORKERS``.  Two more variables let those same jobs run in
the hardened configuration without touching any test body:

``STREAMRULE_TLS_CA``
    Path to a PEM CA (the daemons' self-signed cert): every coordinator
    connection is TLS-wrapped and verified against it.
``STREAMRULE_AUTH_TOKEN``
    Shared token: every coordinator answers the daemons' ``AUTH``
    challenge with it.

Tests pass ``**worker_security_kwargs()`` wherever they build a
``TcpBackend`` / ``AioTcpBackend`` / ``WorkerClient`` against the
``worker_endpoints`` fixture; on a plain local run both variables are
unset and the call collapses to ``{}``.
"""

from __future__ import annotations

import os
import ssl
from typing import Any, Dict


def client_ssl_context(ca_file: str) -> ssl.SSLContext:
    """A client context trusting ``ca_file``, with hostname checks off.

    The CI certs are self-signed for ``127.0.0.1`` with throwaway subject
    names, so the chain is verified (``CERT_REQUIRED``) but the hostname
    match is not -- the trust anchor being *our* CA is the whole check.
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.load_verify_locations(cafile=ca_file)
    context.check_hostname = False
    context.verify_mode = ssl.CERT_REQUIRED
    return context


def worker_security_kwargs() -> Dict[str, Any]:
    """TLS/auth kwargs for coordinator-side constructors, from the env."""
    kwargs: Dict[str, Any] = {}
    ca_file = os.environ.get("STREAMRULE_TLS_CA")
    if ca_file:
        kwargs["ssl_context"] = client_ssl_context(ca_file)
    token = os.environ.get("STREAMRULE_AUTH_TOKEN")
    if token:
        kwargs["auth_token"] = token
    return kwargs
