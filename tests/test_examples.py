"""Smoke tests running the example scripts end to end (as subprocesses)."""

import subprocess
import sys
from pathlib import Path

import pytest


EXAMPLES_DIRECTORY = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *arguments, timeout=300):
    """Run an example script and return its stdout."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIRECTORY / name), *arguments],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart_detects_the_car_fire(self):
        output = run_example("quickstart.py")
        assert "car_fire(dangan)" in output
        assert "give_notification(dangan)" in output
        assert "traffic_jam(newcastle)" not in output

    def test_dependency_analysis_prints_figures(self):
        output = run_example("dependency_analysis.py")
        assert "Extended dependency graph" in output
        assert "duplicated predicates: car_number" in output
        assert "self-loop" in output

    def test_traffic_monitoring_stream(self):
        output = run_example("traffic_monitoring.py", "--windows", "2", "--window-size", "300")
        assert "acc PR_Dep" in output
        # Dependency partitioning keeps accuracy at 1.0 in every window row.
        data_rows = [line for line in output.splitlines() if line.strip() and line.lstrip()[0].isdigit()]
        assert data_rows
        assert all("1.000" in row for row in data_rows)

    def test_custom_rules_example(self):
        output = run_example("custom_rules.py")
        assert "accuracy PR_Dep:          1.000" in output

    def test_paper_experiments_figure(self):
        output = run_example("paper_experiments.py", "--figure", "8", "--window-sizes", "200,400")
        assert "Figure 8: accuracy (program P)" in output
        assert "PR_Dep" in output

    def test_multi_tenant_query_server(self):
        output = run_example("multi_tenant.py", "--windows", "2", "--window-size", "100")
        assert "the two traffic tenants share one" in output
        assert "(evaluation shared by 2)" in output
        assert "unregistering fraud_desk/alerts mid-stream" in output
        assert "(unregistered -- no further results)" in output
        # The metrics sample is real Prometheus text exposition output.
        assert 'streamrule_tenant_windows_dispatched_total{tenant="city"}' in output
        assert "# TYPE streamrule_queries_registered gauge" in output

    @pytest.mark.slow  # spawns shared-memory worker processes
    def test_shared_memory_survives_a_worker_kill(self):
        output = run_example("shared_memory.py", "--windows", "4", "--window-size", "300")
        assert "killing worker process 0 mid-stream" in output
        assert "ring statistics:" in output
        # The kill degrades partitions to inline evaluation, never wedges.
        assert "inline fallbacks after the kill: 0" not in output
        data_rows = [line for line in output.splitlines() if line.strip() and line.lstrip()[0].isdigit()]
        assert len(data_rows) == 4  # every window produced a solution row
