"""End-to-end integration tests across all subsystems.

These tests run the full extended-StreamRule loop -- synthetic stream,
CQELS stand-in, dependency analysis at design time, partitioned parallel
reasoning at run time, combining and accuracy scoring -- on moderate window
sizes, asserting the qualitative claims of the paper's evaluation.
"""

import pytest

from repro.core.accuracy import mean_accuracy
from repro.core.decomposition import decompose
from repro.core.input_dependency import build_input_dependency_graph
from repro.core.partitioner import DependencyPartitioner, RandomPartitioner
from repro.experiments.runner import build_reasoner_suite, evaluate_window
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program, traffic_program_prime
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.window import CountWindow
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.pipeline import StreamRulePipeline
from repro.streamrule.reasoner import Reasoner


def traffic_window(size, seed=2017):
    config = SyntheticStreamConfig(
        window_size=size, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    return generate_window(config)


@pytest.fixture(scope="module")
def window_600():
    return traffic_window(600)


class TestDesignTimeToRunTime:
    """The full design-time (graph, plan) to run-time (partition, solve) flow."""

    def test_program_p_flow(self, window_600):
        program = traffic_program()
        reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)
        plan = decompose(build_input_dependency_graph(program, INPUT_PREDICATES)).plan
        parallel = ParallelReasoner(reasoner, DependencyPartitioner(plan))

        reference = reasoner.reason(window_600)
        partitioned = parallel.reason(window_600)

        assert mean_accuracy(partitioned.answers, reference.answers) == 1.0
        # The slowest partition is strictly smaller than the whole window, so
        # the simulated-parallel latency should beat the monolithic reasoner.
        # Best-of-three on both sides keeps scheduler noise (e.g. a busy CI
        # core) from inverting a single-shot wall-clock comparison.
        best_reference = min(reasoner.reason(window_600).metrics.latency_seconds for _ in range(3))
        best_partitioned = min(parallel.reason(window_600).metrics.latency_seconds for _ in range(3))
        assert best_partitioned < best_reference

    def test_program_p_prime_flow_with_duplication(self, window_600):
        program = traffic_program_prime()
        reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)
        decomposition = decompose(build_input_dependency_graph(program, INPUT_PREDICATES))
        parallel = ParallelReasoner(reasoner, DependencyPartitioner(decomposition.plan))

        reference = reasoner.reason(window_600)
        partitioned = parallel.reason(window_600)

        assert decomposition.duplicated_predicates == frozenset({"car_number"})
        assert partitioned.metrics.duplication_ratio > 0
        assert mean_accuracy(partitioned.answers, reference.answers) == 1.0

    def test_random_partitioning_loses_events(self, window_600):
        program = traffic_program()
        reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)
        reference = reasoner.reason(window_600)
        random_parallel = ParallelReasoner(reasoner, RandomPartitioner(4, seed=11))
        result = random_parallel.reason(window_600)
        accuracy = mean_accuracy(result.answers, reference.answers)
        assert accuracy < 1.0


class TestEvaluationClaims:
    """The qualitative claims behind Figures 7-10, on one small window."""

    @staticmethod
    def make_evaluation():
        suite = build_reasoner_suite("P", random_partition_counts=(2, 5))
        return evaluate_window(suite, traffic_window(800, seed=99))

    @pytest.fixture(scope="class")
    def evaluation(self):
        return self.make_evaluation()

    @classmethod
    def holds_under_retry(cls, evaluation, claim, attempts=3):
        """Accept a wall-clock claim if any of a few measurements backs it.

        Single-shot latency comparisons can be inverted by a scheduler stall
        on a busy (e.g. single-core CI) machine; the paper's claims are about
        the workload, not about one unlucky measurement.
        """
        if claim(evaluation):
            return True
        return any(claim(cls.make_evaluation()) for _ in range(attempts - 1))

    def test_dependency_partitioning_reduces_latency(self, evaluation):
        assert self.holds_under_retry(
            evaluation, lambda ev: ev.latency_of("PR_Dep") < ev.latency_of("R")
        )

    def test_dependency_partitioning_keeps_accuracy(self, evaluation):
        assert evaluation.accuracy_of("PR_Dep") == 1.0

    def test_random_partitioning_degrades_accuracy(self, evaluation):
        assert evaluation.accuracy_of("PR_Ran_k5") < 0.9

    def test_more_random_partitions_are_faster(self, evaluation):
        assert self.holds_under_retry(
            evaluation, lambda ev: ev.latency_of("PR_Ran_k5") <= ev.latency_of("R")
        )


class TestFullPipelineOverAStream:
    def test_stream_of_three_windows(self):
        program = traffic_program()
        reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)
        plan = decompose(build_input_dependency_graph(program, INPUT_PREDICATES)).plan
        parallel = ParallelReasoner(reasoner, DependencyPartitioner(plan))
        pipeline = StreamRulePipeline(
            parallel,
            query_processor=StreamQueryProcessor(set(INPUT_PREDICATES)),
            window=CountWindow(size=300),
        )
        stream = traffic_window(900, seed=5)
        solutions = pipeline.process_all(stream)
        assert len(solutions) == 3
        assert all(solution.metrics.latency_seconds > 0 for solution in solutions)
        # Some events should have been detected across the stream.
        total_events = sum(len(solution.solution_triples) for solution in solutions)
        assert total_events > 0
