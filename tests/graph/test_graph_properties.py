"""Property-based tests for the graph substrate."""

import networkx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.modularity import louvain_communities, modularity
from repro.graph.undirected import UndirectedGraph


edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    min_size=0,
    max_size=30,
)


def build_graph(edges):
    graph = UndirectedGraph()
    for first, second in edges:
        graph.add_edge(f"n{first}", f"n{second}")
    return graph


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_connected_components_partition_the_nodes(edges):
    graph = build_graph(edges)
    components = graph.connected_components()
    seen = [node for component in components for node in component]
    assert sorted(seen) == sorted(graph.nodes)
    # No node appears in two components.
    assert len(seen) == len(set(seen))


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_nodes_in_same_component_are_mutually_reachable_via_union(edges):
    graph = build_graph(edges)
    for component in graph.connected_components():
        # Every node's neighbourhood stays inside its component.
        for node in component:
            assert graph.neighbors(node) <= component


@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_louvain_output_is_a_partition(edges):
    graph = build_graph(edges)
    communities = louvain_communities(graph)
    nodes = [node for community in communities for node in community]
    assert sorted(nodes) == sorted(graph.nodes)
    assert len(nodes) == len(set(nodes))


@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_modularity_matches_networkx_on_connected_component_partition(edges):
    graph = build_graph(edges)
    if graph.edge_count() == 0:
        pytest.skip("modularity undefined without edges")
    partition = graph.connected_components()
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(graph.nodes)
    for first, second, weight in graph.edges():
        nx_graph.add_edge(first, second, weight=weight)
    expected = networkx.algorithms.community.modularity(nx_graph, partition)
    assert modularity(graph, partition) == pytest.approx(expected, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_modularity_is_bounded(edges):
    graph = build_graph(edges)
    communities = louvain_communities(graph)
    if graph.edge_count() == 0:
        pytest.skip("modularity undefined without edges")
    quality = modularity(graph, [set(c) for c in communities])
    assert -1.0 <= quality <= 1.0
