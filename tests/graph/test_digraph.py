"""Unit tests for the directed graph."""

import pytest

from repro.graph.digraph import DirectedGraph


@pytest.fixture
def chain_with_branch():
    graph = DirectedGraph()
    graph.add_edge("average_speed", "very_slow_speed")
    graph.add_edge("very_slow_speed", "traffic_jam")
    graph.add_edge("traffic_jam", "give_notification")
    graph.add_edge("car_fire", "give_notification")
    return graph


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        assert set(graph.nodes) == {"a", "b"}
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_edge_count(self, chain_with_branch):
        assert chain_with_branch.edge_count() == 4
        assert len(chain_with_branch) == 5

    def test_successors_and_predecessors(self, chain_with_branch):
        assert chain_with_branch.successors("very_slow_speed") == {"traffic_jam"}
        assert chain_with_branch.predecessors("give_notification") == {"traffic_jam", "car_fire"}


class TestReachability:
    def test_descendants(self, chain_with_branch):
        assert chain_with_branch.descendants("average_speed") == {
            "very_slow_speed",
            "traffic_jam",
            "give_notification",
        }

    def test_descendants_include_self_option(self, chain_with_branch):
        assert "average_speed" in chain_with_branch.descendants("average_speed", include_self=True)
        assert "average_speed" not in chain_with_branch.descendants("average_speed")

    def test_ancestors(self, chain_with_branch):
        assert chain_with_branch.ancestors("give_notification") == {
            "traffic_jam",
            "very_slow_speed",
            "average_speed",
            "car_fire",
        }

    def test_has_path(self, chain_with_branch):
        assert chain_with_branch.has_path("average_speed", "give_notification")
        assert not chain_with_branch.has_path("give_notification", "average_speed")

    def test_has_path_is_reflexive(self, chain_with_branch):
        assert chain_with_branch.has_path("car_fire", "car_fire")

    def test_cycle_reachability(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        assert graph.descendants("a") == {"a", "b"}
        assert graph.has_path("b", "a")
