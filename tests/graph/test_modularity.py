"""Unit tests for modularity and Louvain community detection."""

import networkx
import pytest

from repro.graph.modularity import louvain_communities, modularity
from repro.graph.undirected import UndirectedGraph


def two_cliques(bridge=True):
    """Two triangles, optionally joined by one bridge edge."""
    graph = UndirectedGraph()
    for first, second in [("a1", "a2"), ("a2", "a3"), ("a1", "a3"), ("b1", "b2"), ("b2", "b3"), ("b1", "b3")]:
        graph.add_edge(first, second)
    if bridge:
        graph.add_edge("a1", "b1")
    return graph


class TestModularity:
    def test_good_partition_has_positive_modularity(self):
        graph = two_cliques()
        quality = modularity(graph, [{"a1", "a2", "a3"}, {"b1", "b2", "b3"}])
        assert quality > 0.3

    def test_trivial_partition_has_zero_modularity(self):
        graph = two_cliques(bridge=False)
        # Everything in one community: Q = 1 - 1 = ... close to 0.5 for two cliques;
        # the truly degenerate case is each edge weight balanced, so just check bounds.
        quality = modularity(graph, [set(graph.nodes)])
        assert -1.0 <= quality <= 1.0

    def test_matches_networkx(self):
        graph = two_cliques()
        communities = [{"a1", "a2", "a3"}, {"b1", "b2", "b3"}]
        nx_graph = networkx.Graph()
        for first, second, weight in graph.edges():
            nx_graph.add_edge(first, second, weight=weight)
        expected = networkx.algorithms.community.modularity(nx_graph, communities)
        assert modularity(graph, communities) == pytest.approx(expected, abs=1e-9)

    def test_resolution_shifts_quality(self):
        graph = two_cliques()
        communities = [{"a1", "a2", "a3"}, {"b1", "b2", "b3"}]
        assert modularity(graph, communities, resolution=2.0) < modularity(graph, communities, resolution=0.5)

    def test_empty_graph_modularity_is_zero(self):
        assert modularity(UndirectedGraph(), []) == 0.0


class TestLouvain:
    def test_two_cliques_are_separated(self):
        graph = two_cliques()
        communities = louvain_communities(graph, resolution=1.0)
        as_sets = {frozenset(community) for community in communities}
        assert frozenset({"a1", "a2", "a3"}) in as_sets
        assert frozenset({"b1", "b2", "b3"}) in as_sets

    def test_partition_covers_all_nodes_exactly_once(self):
        graph = two_cliques()
        communities = louvain_communities(graph)
        all_nodes = [node for community in communities for node in community]
        assert sorted(all_nodes) == sorted(graph.nodes)

    def test_isolated_nodes_form_singletons(self):
        graph = UndirectedGraph()
        graph.add_nodes(["x", "y"])
        communities = louvain_communities(graph)
        assert {frozenset(c) for c in communities} == {frozenset({"x"}), frozenset({"y"})}

    def test_empty_graph(self):
        assert louvain_communities(UndirectedGraph()) == []

    def test_deterministic(self):
        graph = two_cliques()
        assert louvain_communities(graph) == louvain_communities(graph)

    def test_paper_p_prime_graph_decomposition(self, input_graph_p_prime):
        # The connected input dependency graph of P' splits into two
        # communities: one holding average_speed and traffic_light, the other
        # holding the three car_* predicates.  The boundary node car_number
        # may land on either side (the paper's Example 3 puts it left, our
        # Louvain puts it right); the subsequent duplication step makes the
        # final partitioning plan identical either way (see the core tests).
        communities = louvain_communities(input_graph_p_prime.graph, resolution=1.0)
        assert len(communities) == 2
        by_member = {node: index for index, community in enumerate(communities) for node in community}
        assert by_member["average_speed"] == by_member["traffic_light"]
        assert by_member["car_in_smoke"] == by_member["car_speed"] == by_member["car_location"]
        assert by_member["average_speed"] != by_member["car_in_smoke"]

    def test_quality_not_worse_than_networkx_greedy(self):
        graph = two_cliques()
        ours = louvain_communities(graph)
        nx_graph = networkx.Graph()
        for first, second, weight in graph.edges():
            nx_graph.add_edge(first, second, weight=weight)
        greedy = list(networkx.algorithms.community.greedy_modularity_communities(nx_graph))
        ours_quality = modularity(graph, [set(c) for c in ours])
        greedy_quality = modularity(graph, [set(c) for c in greedy])
        assert ours_quality >= greedy_quality - 1e-6
