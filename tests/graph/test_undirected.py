"""Unit tests for the undirected graph."""

import pytest

from repro.graph.undirected import UndirectedGraph


@pytest.fixture
def triangle_plus_isolated():
    graph = UndirectedGraph()
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("a", "c")
    graph.add_node("d")
    return graph


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        graph = UndirectedGraph()
        graph.add_edge("x", "y")
        assert set(graph.nodes) == {"x", "y"}
        assert graph.has_edge("x", "y")
        assert graph.has_edge("y", "x")

    def test_self_loop(self):
        graph = UndirectedGraph()
        graph.add_edge("p", "p")
        assert graph.has_self_loop("p")
        assert graph.degree("p") == 2  # self-loops count twice

    def test_remove_edge(self):
        graph = UndirectedGraph()
        graph.add_edge("x", "y")
        graph.remove_edge("x", "y")
        assert not graph.has_edge("x", "y")
        assert set(graph.nodes) == {"x", "y"}

    def test_edges_listed_once(self, triangle_plus_isolated):
        assert triangle_plus_isolated.edge_count() == 3

    def test_weights(self):
        graph = UndirectedGraph()
        graph.add_edge("x", "y", weight=2.5)
        assert graph.weight("x", "y") == 2.5
        assert graph.weight("y", "x") == 2.5
        assert graph.total_weight() == 2.5


class TestQueries:
    def test_neighbors(self, triangle_plus_isolated):
        assert triangle_plus_isolated.neighbors("a") == {"b", "c"}
        assert triangle_plus_isolated.neighbors("d") == set()

    def test_len_and_contains(self, triangle_plus_isolated):
        assert len(triangle_plus_isolated) == 4
        assert "a" in triangle_plus_isolated
        assert "zzz" not in triangle_plus_isolated

    def test_degree_weighted(self):
        graph = UndirectedGraph()
        graph.add_edge("a", "b", weight=3.0)
        graph.add_edge("a", "a", weight=1.0)
        assert graph.degree("a", weighted=True) == 5.0


class TestAlgorithms:
    def test_connected_components(self, triangle_plus_isolated):
        components = triangle_plus_isolated.connected_components()
        assert sorted(sorted(component) for component in components) == [["a", "b", "c"], ["d"]]

    def test_is_connected(self, triangle_plus_isolated):
        assert not triangle_plus_isolated.is_connected()
        connected = UndirectedGraph()
        connected.add_edge(1, 2)
        connected.add_edge(2, 3)
        assert connected.is_connected()

    def test_empty_graph_is_connected(self):
        assert UndirectedGraph().is_connected()

    def test_subgraph(self, triangle_plus_isolated):
        sub = triangle_plus_isolated.subgraph(["a", "b"])
        assert set(sub.nodes) == {"a", "b"}
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("a", "c")

    def test_copy_is_independent(self, triangle_plus_isolated):
        duplicate = triangle_plus_isolated.copy()
        duplicate.add_edge("d", "a")
        assert not triangle_plus_isolated.has_edge("d", "a")

    def test_edges_between(self, triangle_plus_isolated):
        triangle_plus_isolated.add_edge("c", "d")
        between = triangle_plus_isolated.edges_between({"a", "b", "c"}, {"d"})
        assert between == [("c", "d")]
