"""Ablation A3: scaling of the ASP substrate itself.

The paper's reasoner is Clingo; ours is a pure-Python engine, so this module
documents how the substrate scales: grounding and solving time versus the
number of input facts, for the traffic program P and for a recursive
transitive-closure program.  These numbers justify the 10x scaled-down
default window sizes used by the figure benchmarks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_window
from repro.asp.control import Control
from repro.asp.grounding.grounder import Grounder
from repro.asp.solving.solver import StableModelSolver
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant
from repro.programs.traffic import INPUT_PREDICATES, traffic_program
from repro.streamrule.reasoner import Reasoner

FACT_COUNTS = (250, 500, 1000, 2000)


@pytest.mark.parametrize("fact_count", FACT_COUNTS)
def test_engine_grounding_scaling(benchmark, fact_count):
    """Grounding cost of the traffic program versus window size."""
    reasoner = Reasoner(traffic_program(), INPUT_PREDICATES)
    facts = reasoner.to_atoms(make_window(fact_count))
    program = traffic_program().with_facts(facts)

    ground = benchmark.pedantic(lambda: Grounder(program).ground(), rounds=1, iterations=1, warmup_rounds=0)

    benchmark.group = "asp engine: grounding"
    benchmark.extra_info["fact_count"] = fact_count
    benchmark.extra_info["ground_rules"] = len(ground.rules)
    benchmark.extra_info["possible_atoms"] = len(ground.possible_atoms)
    # The synthetic window may contain duplicate readings, so the number of
    # distinct EDB facts can be slightly below the raw triple count.
    assert len(ground.facts) >= len(set(facts))


@pytest.mark.parametrize("fact_count", FACT_COUNTS)
def test_engine_solving_scaling(benchmark, fact_count):
    """Solving cost (well-founded fast path) versus window size."""
    reasoner = Reasoner(traffic_program(), INPUT_PREDICATES)
    facts = reasoner.to_atoms(make_window(fact_count))
    ground = Grounder(traffic_program().with_facts(facts)).ground()

    models = benchmark.pedantic(
        lambda: list(StableModelSolver(ground).models()), rounds=1, iterations=1, warmup_rounds=0
    )

    benchmark.group = "asp engine: solving"
    benchmark.extra_info["fact_count"] = fact_count
    assert len(models) == 1


@pytest.mark.parametrize("node_count", (20, 40, 60))
def test_engine_recursive_grounding(benchmark, node_count):
    """Transitive closure over a chain: quadratic ground program growth."""
    control = Control()
    control.add("path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).")
    control.add_facts(
        [Atom("edge", (Constant(index), Constant(index + 1))) for index in range(node_count)]
    )

    result = benchmark.pedantic(control.solve, rounds=1, iterations=1, warmup_rounds=0)

    benchmark.group = "asp engine: recursion"
    benchmark.extra_info["node_count"] = node_count
    [model] = result.models
    expected_paths = node_count * (node_count + 1) // 2
    assert len(model.atoms_of("path")) == expected_paths


def test_engine_nonstratified_search(benchmark):
    """Completion + DPLL search path on a choice-style program."""
    control = Control()
    control.add("q(X) :- p(X), not r(X). r(X) :- p(X), not q(X). :- r(1).")
    control.add_facts([Atom("p", (Constant(index),)) for index in range(1, 7)])

    result = benchmark.pedantic(lambda: control.solve(models=0), rounds=1, iterations=1, warmup_rounds=0)

    benchmark.group = "asp engine: non-stratified search"
    benchmark.extra_info["answer_sets"] = len(result.models)
    assert len(result.models) == 2 ** 5
