"""Ablation A2: Louvain resolution sweep and random-k accuracy decay.

Two design-choice ablations that the paper motivates but does not plot:

* how the Louvain resolution parameter (footnote 8 uses 1.0) changes the
  number of communities and the resulting accuracy of PR_Dep;
* how quickly random partitioning loses accuracy as the number of chunks
  grows (the trend behind Figures 8 and 10).
"""

from __future__ import annotations


from benchmarks.conftest import bench_window_sizes, write_result_table
from repro.experiments.ablations import partition_count_sweep, resolution_sweep

ABLATION_WINDOW = bench_window_sizes()[1]
RESOLUTIONS = (0.5, 1.0, 2.0, 4.0)
PARTITION_COUNTS = (2, 3, 4, 5, 8)


def test_ablation_resolution_sweep(benchmark):
    """Sweep the modularity resolution on P' and record communities/accuracy."""
    records = benchmark.pedantic(
        resolution_sweep,
        kwargs={
            "program_name": "P_prime",
            "resolutions": RESOLUTIONS,
            "window_size": ABLATION_WINDOW,
            "seed": 2017,
        },
        rounds=1,
        iterations=1,
    )
    lines = ["resolution  communities  duplicated                accuracy"]
    for record in records:
        duplicated = ",".join(record.duplicated_predicates) or "-"
        lines.append(
            f"{record.resolution:10.2f}  {record.community_count:11d}  {duplicated:24s}  {record.accuracy:8.3f}"
        )
    write_result_table("ablation_resolution.txt", "\n".join(lines))

    benchmark.group = "ablation: louvain resolution"
    benchmark.extra_info["window_size"] = ABLATION_WINDOW
    # The paper's setting (resolution 1.0) must preserve full accuracy.
    baseline = [record for record in records if record.resolution == 1.0]
    assert baseline and baseline[0].accuracy == 1.0


def test_ablation_random_partition_count(benchmark):
    """Accuracy of random partitioning as k grows (paper: k=2..5 in Figs 8/10)."""
    accuracies = benchmark.pedantic(
        partition_count_sweep,
        kwargs={
            "program_name": "P",
            "partition_counts": PARTITION_COUNTS,
            "window_size": ABLATION_WINDOW,
            "seed": 2017,
        },
        rounds=1,
        iterations=1,
    )
    lines = ["k  accuracy"]
    for k in PARTITION_COUNTS:
        lines.append(f"{k}  {accuracies[k]:8.3f}")
    write_result_table("ablation_random_k.txt", "\n".join(lines))

    benchmark.group = "ablation: random partition count"
    benchmark.extra_info["window_size"] = ABLATION_WINDOW
    assert all(0.0 <= value <= 1.0 for value in accuracies.values())
    # Strong fan-out should not beat mild fan-out by much (decreasing trend).
    assert accuracies[max(PARTITION_COUNTS)] <= accuracies[min(PARTITION_COUNTS)] + 0.05
