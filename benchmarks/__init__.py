"""Benchmark harness regenerating the paper's figures (see conftest.py)."""
