#!/usr/bin/env python3
"""Multi-tenant query server vs N independent sessions.

Six standing queries -- two traffic desks sharing the paper's program ``P``,
a fraud desk plus its extended (structuring) variant, and an IoT monitor
plus its extended (maintenance) variant -- run once on a single
:class:`QueryServer` over one shared thread-pool backend, and once as six
isolated :class:`StreamSession` instances.  Each pair agrees on its window
policy and input slice, so on the server each pair shares a lane: one
evaluation per window serves both tenants, on one shared grounding-cache
track.

Reported:

* ``evaluations_ratio`` -- isolated window evaluations / server lane
  evaluations (paired lanes make this ~2.0 by construction),
* ``grounding_ops_ratio`` -- isolated grounding work (cache misses + delta
  repairs + rebuilds, summed over the six private caches) / the server's
  single shared cache,
* ``answers_identical`` -- 1.0 iff every tenant's projected per-window
  answer sets match its isolated session's exactly, in order,
* per-tenant p50/p95 window latency on the server (informational -- absolute
  ms do not transfer between machines and are not baselined).

Usage::

    PYTHONPATH=src python benchmarks/bench_query_server.py [--quick]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import write_bench_json  # noqa: E402
from repro.asp.grounding.grounder import GroundingCache  # noqa: E402
from repro.programs import fraud as fraud_module  # noqa: E402
from repro.programs import iot as iot_module  # noqa: E402
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program  # noqa: E402
from repro.streaming.generator import SyntheticStreamConfig, generate_window  # noqa: E402
from repro.streaming.triples import Triple  # noqa: E402
from repro.streaming.window import CountWindow  # noqa: E402
from repro.streamrule.backends import ThreadPoolBackend  # noqa: E402
from repro.streamrule.server import QueryServer, StandingQuery  # noqa: E402
from repro.streamrule.session import StreamSession  # noqa: E402

RESULTS_DIRECTORY = Path(__file__).parent / "results"
BENCH_SEED = 2017


def tenant_specs(window_size: int) -> List[StandingQuery]:
    """Six standing queries: three scenario pairs, each pair sharing a lane."""
    sliding = CountWindow(size=window_size, slide=max(1, window_size // 4))
    fraud_window = CountWindow(size=window_size, slide=max(1, window_size // 2))
    tumbling = CountWindow(size=window_size, slide=None)
    return [
        StandingQuery(
            tenant="city", name="jams", program=traffic_program(), window=sliding,
            input_predicates=INPUT_PREDICATES, output_predicates=EVENT_PREDICATES,
        ),
        StandingQuery(
            tenant="highways", name="jams", program=traffic_program(), window=sliding,
            input_predicates=INPUT_PREDICATES, output_predicates=EVENT_PREDICATES,
        ),
        StandingQuery(
            tenant="fraud_desk", name="alerts", program=fraud_module.fraud_program(),
            window=fraud_window, input_predicates=fraud_module.INPUT_PREDICATES,
            output_predicates=fraud_module.ALERT_PREDICATES,
        ),
        StandingQuery(
            tenant="aml_desk", name="alerts", program=fraud_module.fraud_program_extended(),
            window=fraud_window, input_predicates=fraud_module.INPUT_PREDICATES,
            output_predicates=fraud_module.EXTENDED_ALERT_PREDICATES,
        ),
        StandingQuery(
            tenant="plant", name="anomalies", program=iot_module.iot_program(),
            window=tumbling, input_predicates=iot_module.INPUT_PREDICATES,
            output_predicates=iot_module.ANOMALY_PREDICATES,
        ),
        StandingQuery(
            tenant="facilities", name="anomalies", program=iot_module.iot_program_extended(),
            window=tumbling, input_predicates=iot_module.INPUT_PREDICATES,
            output_predicates=iot_module.EXTENDED_ANOMALY_PREDICATES,
        ),
    ]


def make_combined_stream(length_per_scenario: int) -> List[Triple]:
    """Interleave one stream per scenario; lane filters route the slices."""
    streams = [
        generate_window(SyntheticStreamConfig(
            window_size=length_per_scenario, input_predicates=INPUT_PREDICATES,
            scheme="traffic", seed=BENCH_SEED,
        )),
        generate_window(SyntheticStreamConfig(
            window_size=length_per_scenario, input_predicates=fraud_module.INPUT_PREDICATES,
            scheme="fraud", seed=BENCH_SEED + 1,
        )),
        generate_window(SyntheticStreamConfig(
            window_size=length_per_scenario, input_predicates=iot_module.INPUT_PREDICATES,
            scheme="iot", seed=BENCH_SEED + 2,
        )),
    ]
    combined: List[Triple] = []
    for index in range(length_per_scenario):
        for stream in streams:
            combined.append(stream[index])
    return combined


def grounding_ops(cache_statistics: Dict[str, float]) -> float:
    """Actual grounding work: full grounds plus delta repairs/rebuilds."""
    return (
        cache_statistics["misses"]
        + cache_statistics["delta_repairs"]
        + cache_statistics["delta_rebuilds"]
    )


def project(answers: Sequence[frozenset], outputs: frozenset) -> Tuple[frozenset, ...]:
    """The server's projection: restrict and dedupe preserving order."""
    projected: Dict[frozenset, None] = {}
    for answer in answers:
        projected.setdefault(frozenset(atom for atom in answer if atom.predicate in outputs))
    return tuple(projected)


def run_server(
    queries: Sequence[StandingQuery], stream: Sequence[Triple], max_workers: int
) -> Dict[str, object]:
    server = QueryServer(backend=ThreadPoolBackend(max_workers=max_workers))
    subscriptions = {query.key: server.register(query) for query in queries}
    started = time.perf_counter()
    server.push(stream)
    server.finish()
    elapsed = time.perf_counter() - started
    answers = {
        key: [result.answers for result in subscription.drain()]
        for key, subscription in subscriptions.items()
    }
    evaluations = sum(row.dispatched for row in server.scheduler.snapshot())
    summary = {
        "elapsed_s": elapsed,
        "evaluations": float(evaluations),
        "grounding_ops": grounding_ops(server.grounding_cache.statistics()),
        "sharing": server.sharing_summary(),
        "answers": answers,
        "latency": {
            tenant: (stats.p50_latency_seconds * 1000.0, stats.p95_latency_seconds * 1000.0)
            for tenant, stats in server.tenant_stats.items()
        },
    }
    server.close()
    return summary


def run_isolated(
    queries: Sequence[StandingQuery], stream: Sequence[Triple], max_workers: int
) -> Dict[str, object]:
    answers: Dict[str, List[Tuple[frozenset, ...]]] = {}
    ops = 0.0
    evaluations = 0.0
    started = time.perf_counter()
    for query in queries:
        inputs = query.effective_inputs()
        outputs = query.effective_outputs()
        # A lane windows the already-filtered slice; match that exactly.
        slice_ = [item for item in stream if inputs is None or item.predicate in inputs]
        session = StreamSession(
            query.program,
            window=query.window,
            backend=ThreadPoolBackend(max_workers=max_workers),
            input_predicates=query.input_predicates,
            grounding_cache=GroundingCache(),
        )
        collected: List[Tuple[frozenset, ...]] = []
        session.push(slice_)
        session.finish()
        for solution in session.results(wait=False):
            collected.append(project(solution.answers, outputs))
            evaluations += 1.0
        ops += grounding_ops(session.reasoner.grounding_cache.statistics())
        session.close()
        answers[query.key] = collected
    return {
        "elapsed_s": time.perf_counter() - started,
        "evaluations": evaluations,
        "grounding_ops": ops,
        "answers": answers,
    }


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true", help="CI smoke run: short streams")
    parser.add_argument("--window-size", type=positive_int, default=None, help="triples per lane window")
    parser.add_argument("--stream-length", type=positive_int, default=None, help="triples per scenario stream")
    parser.add_argument("--max-workers", type=positive_int, default=2, help="backend worker threads")
    parser.add_argument("--no-write", action="store_true", help="do not write benchmarks/results/")
    arguments = parser.parse_args(argv)

    window_size = arguments.window_size if arguments.window_size is not None else (120 if arguments.quick else 600)
    stream_length = (
        arguments.stream_length
        if arguments.stream_length is not None
        else (window_size * 4 if arguments.quick else window_size * 8)
    )

    queries = tenant_specs(window_size)
    stream = make_combined_stream(stream_length)

    server = run_server(queries, stream, arguments.max_workers)
    isolated = run_isolated(queries, stream, arguments.max_workers)

    identical = all(
        server["answers"][query.key] == isolated["answers"][query.key] for query in queries
    )
    evaluations_ratio = (
        isolated["evaluations"] / server["evaluations"] if server["evaluations"] else float("inf")
    )
    grounding_ops_ratio = (
        isolated["grounding_ops"] / server["grounding_ops"] if server["grounding_ops"] else float("inf")
    )

    metrics: Dict[str, float] = {
        "evaluations_ratio": evaluations_ratio,
        "grounding_ops_ratio": grounding_ops_ratio,
        "answers_identical": 1.0 if identical else 0.0,
        "shared_rules": server["sharing"]["shared_rules"],
        "lanes": server["sharing"]["lanes"],
    }
    lines = [
        "bench_query_server",
        f"6 tenants (3 scenario pairs), window size {window_size}, {stream_length} triples/scenario, "
        f"{arguments.max_workers} workers, seed {BENCH_SEED}",
        "",
        f"{'':<22}{'server':>12}{'isolated':>12}{'ratio':>10}",
        f"{'evaluations':<22}{server['evaluations']:>12.0f}{isolated['evaluations']:>12.0f}"
        f"{evaluations_ratio:>10.2f}",
        f"{'grounding ops':<22}{server['grounding_ops']:>12.0f}{isolated['grounding_ops']:>12.0f}"
        f"{grounding_ops_ratio:>10.2f}",
        f"{'elapsed s':<22}{server['elapsed_s']:>12.2f}{isolated['elapsed_s']:>12.2f}"
        f"{isolated['elapsed_s'] / server['elapsed_s'] if server['elapsed_s'] else float('inf'):>10.2f}",
        "",
        f"sharing: {server['sharing']}",
        f"answers identical across all 6 tenants: {'yes' if identical else 'NO -- MISMATCH'}",
        "",
        f"{'tenant':<14}{'p50 ms':>10}{'p95 ms':>10}",
    ]
    for tenant, (p50, p95) in sorted(server["latency"].items()):
        lines.append(f"{tenant:<14}{p50:>10.2f}{p95:>10.2f}")
        metrics[f"p50_ms_{tenant}"] = p50
        metrics[f"p95_ms_{tenant}"] = p95
    overall = [p50 for p50, _ in server["latency"].values()]
    if overall:
        metrics["p50_ms_median"] = statistics.median(overall)

    report = "\n".join(lines)
    print(report)
    if not arguments.no_write:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / "query_server.txt"
        path.write_text(report + "\n")
        bench_path = write_bench_json(
            "query_server",
            metrics,
            meta={
                "window_size": window_size,
                "stream_length": stream_length,
                "max_workers": arguments.max_workers,
                "quick": arguments.quick,
            },
        )
        print(f"\nwritten to {path} and {bench_path}")
    return 1 if not identical else 0


if __name__ == "__main__":
    raise SystemExit(main())
