#!/usr/bin/env python3
"""Throughput vs. worker count and per-backend dispatch overhead.

The paper's scalability claim rests on running the partition reasoners
concurrently on multiple cores (an 8-core machine in the evaluation).  This
benchmark measures that directly on the paper's synthetic traffic workload:

1. *multi-core scaling* -- the same window stream is evaluated serially
   (the pessimistic single-core bound) and on the process-pool backend at
   increasing worker counts; reported throughput is triples/second of
   measured wall-clock.
2. *backend sweep* -- the same stream is pushed through every execution
   backend (inline, thread pool, pinned process pool, loopback socket,
   shared-memory ring), reporting throughput, the per-window dispatch
   overhead relative to inline evaluation, and cache statistics.  The
   loopback row prices the full pickle-over-a-wire round trip that
   multi-machine sharding will pay; the shared-memory row prices the
   interned-id frames through a ``multiprocessing.shared_memory`` ring.
3. *window-to-window grounding cache* -- a recurring window stream (as
   produced by periodic sensors or overlapping sliding windows) is run with
   and without a :class:`GroundingCache`, reporting the hit rate and the
   latency ratio.
4. *TCP worker fleet* -- two real ``python -m repro.streamrule.worker``
   daemons are spawned on localhost and the same stream is dispatched over
   ``TcpBackend``, pricing the full framed-socket round trip against inline
   evaluation, and sweeping a *sliding* window with delta shipping on vs.
   off to report the wire-bytes-per-window saving of shard-side fact
   deltas.

Usage::

    PYTHONPATH=src python benchmarks/bench_multicore_scaling.py [--quick]

Options::

    --quick         small windows / few repeats (CI smoke run)
    --workers 1,2,4 comma-separated worker counts for the scaling sweep
    --window-size N triples per window
    --windows N     distinct windows in the stream
    --repeats N     how many times the window stream recurs (cache section)
    --no-tcp        skip the TCP fleet section (no subprocesses spawned)

Note: genuine speed-up requires genuine cores.  The script prints the host's
CPU count; on a single-core container the process/loopback rows measure pure
dispatch overhead and the interesting numbers are the overhead and cache
sections.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import write_bench_json  # noqa: E402
from repro.asp.grounding import GroundingCache  # noqa: E402
from repro.core.partitioner import HashPartitioner  # noqa: E402
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program  # noqa: E402
from repro.streaming.generator import SyntheticStreamConfig, generate_window  # noqa: E402
from repro.streaming.window import CountWindow  # noqa: E402
from repro.streamrule.backends import (  # noqa: E402
    ExecutionBackend,
    ExecutionMode,
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    SharedMemoryBackend,
    TcpBackend,
    ThreadPoolBackend,
    backend_for_mode,
)
from repro.streamrule.reasoner import Reasoner  # noqa: E402
from repro.streamrule.session import StreamSession  # noqa: E402
from repro.streamrule.worker import spawn_local_workers  # noqa: E402

RESULTS_DIRECTORY = Path(__file__).parent / "results"
BENCH_SEED = 2017


def make_windows(count: int, window_size: int) -> List[list]:
    """Distinct reproducible traffic windows (the paper's workload scheme)."""
    windows = []
    for index in range(count):
        config = SyntheticStreamConfig(
            window_size=window_size,
            input_predicates=INPUT_PREDICATES,
            scheme="traffic",
            seed=BENCH_SEED + index,
        )
        windows.append(generate_window(config))
    return windows


def run_stream_on_backend(
    backend: ExecutionBackend,
    partitions: int,
    windows: Sequence[list],
    grounding_cache: Optional[GroundingCache] = None,
    warmup: bool = False,
) -> Dict[str, float]:
    """Evaluate ``windows`` on ``backend``; return wall-clock plus cache stats.

    ``warmup`` evaluates the first window once outside the timed region, so
    one-time costs a backend pays lazily on first dispatch (spawned-child
    interpreter boot, reasoner unpickling, symbol-table sync) are excluded
    and the numbers price *steady-state* dispatch.
    """
    reasoner = Reasoner(
        traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=grounding_cache
    )
    hits = misses = answers = 0
    with StreamSession(reasoner, partitioner=HashPartitioner(partitions), backend=backend) as session:
        session.backend.start(reasoner)  # pool spin-up outside the timed region
        if warmup and windows:
            session.evaluate_window(windows[0])
        started = time.perf_counter()
        for window in windows:
            result = session.evaluate_window(window)
            hits += result.metrics.cache_hits
            misses += result.metrics.cache_misses
            answers += result.metrics.answer_count
        elapsed = time.perf_counter() - started
    total_items = sum(len(window) for window in windows)
    return {
        "seconds": elapsed,
        "throughput": total_items / elapsed if elapsed else float("inf"),
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "answers": float(answers),
    }


def run_stream(
    mode: ExecutionMode,
    workers: Optional[int],
    partitions: int,
    windows: Sequence[list],
    grounding_cache: Optional[GroundingCache] = None,
) -> Dict[str, float]:
    """Legacy-mode wrapper over :func:`run_stream_on_backend`."""
    return run_stream_on_backend(
        backend_for_mode(mode, workers), partitions, windows, grounding_cache=grounding_cache
    )


def scaling_section(
    worker_counts: Sequence[int], windows: Sequence[list], metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    # Every row evaluates the *same* partition layout (k = max workers) so the
    # speed-up column isolates where the partitions run; varying k per row
    # would change the workload itself (evaluations, duplication, combining).
    partitions = max(worker_counts)
    lines = [
        f"Multi-core scaling (PROCESSES vs SERIAL, hash partitioning, k = {partitions} partitions)",
        f"{'configuration':<24}{'wall s':>10}{'items/s':>12}{'speed-up':>10}",
    ]
    baseline = run_stream(ExecutionMode.SERIAL, None, partitions, windows)
    lines.append(f"{'SERIAL (1 core)':<24}{baseline['seconds']:>10.3f}{baseline['throughput']:>12.0f}{1.0:>10.2f}")
    for workers in worker_counts:
        record = run_stream(ExecutionMode.PROCESSES, workers, partitions, windows)
        speedup = baseline["seconds"] / record["seconds"] if record["seconds"] else float("inf")
        label = f"PROCESSES x{workers}"
        lines.append(f"{label:<24}{record['seconds']:>10.3f}{record['throughput']:>12.0f}{speedup:>10.2f}")
        if metrics is not None:
            metrics[f"process_speedup_x{workers}"] = speedup
    return lines


def backend_section(
    windows: Sequence[list], workers: int, partitions: int, metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    """Sweep all four backends over the same stream; price their dispatch.

    Dispatch overhead is the extra wall-clock per window relative to inline
    evaluation of the identical partition layout -- the cost of futures and
    thread hops (threads), pickling + IPC (processes), a full pickled
    socket round trip per partition (loopback), or interned-id frames
    through a shared-memory ring (shared-memory).  The
    ``shm_vs_threads_overhead`` ratio is the interned-id process-dispatch
    tax relative to the cheapest concurrent backend.
    """
    backends = [
        ("inline", InlineBackend()),
        ("threads", ThreadPoolBackend(max_workers=workers)),
        ("processes", ProcessPoolBackend(max_workers=workers)),
        ("loopback-socket", LoopbackSocketBackend(max_workers=workers)),
        ("shared-memory", SharedMemoryBackend(max_workers=workers)),
    ]
    lines = [
        f"Backend sweep (x{workers} workers, hash partitioning, k = {partitions} partitions, cached)",
        f"{'backend':<24}{'wall s':>10}{'items/s':>12}{'ms/win overhead':>17}{'hit rate':>10}",
    ]
    records = {}
    for name, backend in backends:
        records[name] = run_stream_on_backend(
            backend, partitions, windows, grounding_cache=GroundingCache(), warmup=True
        )
    baseline_seconds = records["inline"]["seconds"]
    for name, _ in backends:
        record = records[name]
        overhead_ms = (record["seconds"] - baseline_seconds) / len(windows) * 1000.0
        lines.append(
            f"{name:<24}{record['seconds']:>10.3f}{record['throughput']:>12.0f}"
            f"{overhead_ms:>17.2f}{record['cache_hit_rate']:>10.2f}"
        )
        if metrics is not None and name != "inline":
            metrics[f"overhead_ms_{name}"] = overhead_ms
    if metrics is not None:
        # Process-dispatch tax of the shm ring relative to the cheapest
        # concurrent transport.  The denominator is floored at half a
        # millisecond per window: thread-hop overhead below that is timer
        # noise and would explode the ratio meaninglessly.
        per_window_ms = lambda name: (records[name]["seconds"] - baseline_seconds) / len(windows) * 1000.0  # noqa: E731
        metrics["shm_vs_threads_overhead"] = max(per_window_ms("shared-memory"), 0.0) / max(
            per_window_ms("threads"), 0.5
        )
    return lines


def cache_section(
    windows: Sequence[list], repeats: int, partitions: int, metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    stream = list(windows) * repeats
    cold = run_stream(ExecutionMode.SERIAL, None, partitions, stream, grounding_cache=None)
    warm = run_stream(ExecutionMode.SERIAL, None, partitions, stream, grounding_cache=GroundingCache())
    ratio = cold["seconds"] / warm["seconds"] if warm["seconds"] else float("inf")
    if metrics is not None:
        metrics["cache_speedup"] = ratio
        metrics["cache_hit_rate"] = warm["cache_hit_rate"]
    return [
        f"Grounding cache on a recurring stream ({len(windows)} windows x{repeats})",
        f"{'configuration':<24}{'wall s':>10}{'items/s':>12}{'hit rate':>10}",
        f"{'no cache':<24}{cold['seconds']:>10.3f}{cold['throughput']:>12.0f}{cold['cache_hit_rate']:>10.2f}",
        f"{'GroundingCache':<24}{warm['seconds']:>10.3f}{warm['throughput']:>12.0f}{warm['cache_hit_rate']:>10.2f}",
        f"cache speed-up: {ratio:.2f}x",
    ]


def tcp_section(
    windows: Sequence[list], workers: int, partitions: int, metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    """Two real worker daemons: dispatch overhead + delta-vs-full shipping.

    Spawns ``workers`` ``python -m repro.streamrule.worker`` subprocesses
    on localhost.  Part one prices TCP dispatch like :func:`backend_section`
    prices the in-process transports (same distinct-window stream, full-fact
    shipping dominates since nothing overlaps).  Part two concatenates the
    stream and re-windows it as a *sliding* window (slide = size/4), runs it
    once with delta shipping and once without, and reports the wire payload
    per window each way -- the steady-state saving of shard-side fact
    deltas.
    """
    lines: List[str] = [f"TCP worker fleet ({workers} local daemons, k = {partitions} partitions)"]
    fleet = spawn_local_workers(workers)
    try:
        endpoints = [worker.endpoint for worker in fleet]
        inline = run_stream_on_backend(InlineBackend(), partitions, windows, grounding_cache=GroundingCache())
        tcp_backend = TcpBackend(endpoints)
        record = run_stream_on_backend(tcp_backend, partitions, windows, grounding_cache=GroundingCache())
        overhead_ms = (record["seconds"] - inline["seconds"]) / len(windows) * 1000.0
        if metrics is not None:
            metrics["overhead_ms_tcp"] = overhead_ms
        lines.append(f"{'backend':<24}{'wall s':>10}{'items/s':>12}{'ms/win overhead':>17}")
        lines.append(f"{'inline':<24}{inline['seconds']:>10.3f}{inline['throughput']:>12.0f}{0.0:>17.2f}")
        lines.append(f"{'tcp':<24}{record['seconds']:>10.3f}{record['throughput']:>12.0f}{overhead_ms:>17.2f}")

        # Delta-shipping sweep: one long sliding stream over the same triples.
        stream = [triple for window in windows for triple in window]
        size = max(len(windows[0]), 8)
        sliding = CountWindow(size=size, slide=max(size // 4, 1), emit_partial=False)
        lines.append("")
        lines.append(f"Delta shipping on a sliding window (size {size}, slide {max(size // 4, 1)})")
        lines.append(f"{'shipping':<24}{'wall s':>10}{'windows':>9}{'KiB sent':>10}{'KiB/win':>9}{'delta frames':>14}")
        kib_per_window: Dict[str, float] = {}
        for label, delta_shipping in (("full facts", False), ("fact deltas", True)):
            backend = TcpBackend(endpoints, delta_shipping=delta_shipping)
            reasoner = Reasoner(
                traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
            )
            count = 0
            with StreamSession(reasoner, partitioner=HashPartitioner(partitions), backend=backend) as session:
                session.backend.start(reasoner)
                started = time.perf_counter()
                for delta in sliding.deltas(stream):
                    session.evaluate_window(list(delta.window), delta=delta)
                    count += 1
                elapsed = time.perf_counter() - started
            stats = backend.wire_statistics()
            sent_kib = stats["bytes_out"] / 1024.0
            kib_per_window[label] = sent_kib / max(count, 1)
            lines.append(
                f"{label:<24}{elapsed:>10.3f}{count:>9d}{sent_kib:>10.1f}"
                f"{sent_kib / max(count, 1):>9.2f}{int(stats['items_delta']):>14d}"
            )
        if metrics is not None and kib_per_window.get("full facts"):
            metrics["delta_wire_saving"] = 1.0 - (
                kib_per_window["fact deltas"] / kib_per_window["full facts"]
            )
    finally:
        for worker in fleet:
            worker.terminate()
    return lines


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def worker_list(text: str) -> Tuple[int, ...]:
    try:
        counts = tuple(positive_int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated positive integers, got {text!r}")
    if not counts:
        raise argparse.ArgumentTypeError("expected at least one worker count")
    return counts


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true", help="CI smoke run: small windows, few repeats")
    parser.add_argument("--workers", type=worker_list, default=None, help="comma-separated worker counts (default: 1,2,4)")
    parser.add_argument("--window-size", type=positive_int, default=None, help="triples per window")
    parser.add_argument("--windows", type=positive_int, default=None, help="distinct windows in the stream")
    parser.add_argument("--repeats", type=positive_int, default=None, help="stream recurrences for the cache section")
    parser.add_argument("--no-tcp", action="store_true", help="skip the TCP worker-fleet section")
    parser.add_argument("--no-write", action="store_true", help="do not write benchmarks/results/")
    arguments = parser.parse_args(argv)

    worker_counts = arguments.workers or ((1, 2) if arguments.quick else (1, 2, 4))
    window_size = arguments.window_size if arguments.window_size is not None else (200 if arguments.quick else 2000)
    window_count = arguments.windows if arguments.windows is not None else (2 if arguments.quick else 4)
    repeats = arguments.repeats if arguments.repeats is not None else (2 if arguments.quick else 3)

    lines = [
        "bench_multicore_scaling",
        f"host cores: {os.cpu_count()}  (speed-up > 1 requires > 1 core)",
        f"windows: {window_count} x {window_size} triples, traffic scheme, seed {BENCH_SEED}",
        "",
    ]
    windows = make_windows(window_count, window_size)
    metrics: Dict[str, float] = {}
    lines += scaling_section(worker_counts, windows, metrics)
    lines.append("")
    lines += backend_section(windows, workers=max(worker_counts), partitions=max(worker_counts), metrics=metrics)
    lines.append("")
    lines += cache_section(windows, repeats, partitions=max(worker_counts), metrics=metrics)
    if not arguments.no_tcp:
        lines.append("")
        lines += tcp_section(
            windows, workers=min(2, max(worker_counts)), partitions=max(worker_counts), metrics=metrics
        )

    report = "\n".join(lines)
    print(report)
    if not arguments.no_write:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / "multicore_scaling.txt"
        path.write_text(report + "\n")
        bench_path = write_bench_json(
            "multicore_scaling",
            metrics,
            meta={
                "window_size": window_size,
                "windows": window_count,
                "worker_counts": list(worker_counts),
                "tcp": not arguments.no_tcp,
                "quick": arguments.quick,
            },
        )
        print(f"\nwritten to {path} and {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
