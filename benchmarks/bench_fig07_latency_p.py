"""Figure 7: reasoning latency over window size, program P.

Series: R (whole window), PR_Dep (dependency partitioning), PR_Ran_k2..k5
(random partitioning).  The paper's qualitative result: PR_Dep cuts roughly
half of R's latency while random partitioning gets faster as k grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import RANDOM_KS, bench_window_sizes

WINDOW_SIZES = bench_window_sizes()
CONFIGURATIONS = ["R", "PR_Dep"] + [f"PR_Ran_k{k}" for k in RANDOM_KS]


def _reasoner_for(suite, label):
    if label == "R":
        return suite.baseline
    if label == "PR_Dep":
        return suite.dependency
    return suite.random[int(label.rsplit("k", 1)[1])]


@pytest.mark.parametrize("window_size", WINDOW_SIZES)
@pytest.mark.parametrize("label", CONFIGURATIONS)
def test_fig07_latency_program_p(benchmark, suite_p, windows, label, window_size):
    """Time one window evaluation for every configuration and window size."""
    window = windows[window_size]
    reasoner = _reasoner_for(suite_p, label)

    result = benchmark.pedantic(reasoner.reason, args=(window,), rounds=1, iterations=1, warmup_rounds=0)

    benchmark.group = f"fig07 latency P (window={window_size})"
    benchmark.extra_info["figure"] = 7
    benchmark.extra_info["program"] = "P"
    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["window_size"] = window_size
    benchmark.extra_info["reported_latency_ms"] = result.metrics.latency_milliseconds
    benchmark.extra_info["answer_count"] = result.metrics.answer_count

    assert result.metrics.latency_seconds > 0


def test_fig07_dependency_partitioning_beats_whole_window(suite_p, windows):
    """The headline claim of Figure 7: PR_Dep latency is well below R's."""
    largest = max(windows)
    window = windows[largest]
    latency_r = suite_p.baseline.reason(window).metrics.latency_milliseconds
    latency_dep = suite_p.dependency.reason(window).metrics.latency_milliseconds
    assert latency_dep < latency_r
