"""Figure 8: accuracy over window size, program P.

Series: PR_Dep and PR_Ran_k2..k5, scored with the paper's non-monotonic
accuracy metric against the unpartitioned reasoner R.  The paper's
qualitative result: PR_Dep stays at accuracy 1.0 while random partitioning
drops sharply and degrades further as k grows.

The full series table is written to ``benchmarks/results/figure08.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import RANDOM_KS, bench_window_sizes, write_result_table
from repro.core.accuracy import mean_accuracy
from repro.experiments.figures import SweepRecord
from repro.experiments.reporting import render_accuracy_table

WINDOW_SIZES = bench_window_sizes()
PARTITIONED = ["PR_Dep"] + [f"PR_Ran_k{k}" for k in RANDOM_KS]


def _reasoner_for(suite, label):
    if label == "PR_Dep":
        return suite.dependency
    return suite.random[int(label.rsplit("k", 1)[1])]


@pytest.fixture(scope="module")
def reference_answers(suite_p, windows):
    """Answers of the unpartitioned reasoner R, per window size."""
    return {size: suite_p.baseline.reason(window).answers for size, window in windows.items()}


@pytest.mark.parametrize("window_size", WINDOW_SIZES)
@pytest.mark.parametrize("label", PARTITIONED)
def test_fig08_accuracy_program_p(benchmark, suite_p, windows, reference_answers, label, window_size):
    """Measure the partitioned reasoner and score its answers against R."""
    window = windows[window_size]
    reasoner = _reasoner_for(suite_p, label)

    result = benchmark.pedantic(reasoner.reason, args=(window,), rounds=1, iterations=1, warmup_rounds=0)
    accuracy = mean_accuracy(result.answers, reference_answers[window_size])

    benchmark.group = f"fig08 accuracy P (window={window_size})"
    benchmark.extra_info["figure"] = 8
    benchmark.extra_info["program"] = "P"
    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["window_size"] = window_size
    benchmark.extra_info["accuracy"] = round(accuracy, 4)

    assert 0.0 <= accuracy <= 1.0
    if label == "PR_Dep":
        assert accuracy == 1.0


def test_fig08_write_series_table(suite_p, windows, reference_answers):
    """Render the full Figure 8 series (and Figure 7 latencies) to results/."""
    records = []
    for window_size, window in sorted(windows.items()):
        latency = {"R": suite_p.baseline.reason(window).metrics.latency_milliseconds}
        accuracy = {"R": 1.0}
        for label in PARTITIONED:
            result = _reasoner_for(suite_p, label).reason(window)
            latency[label] = result.metrics.latency_milliseconds
            accuracy[label] = mean_accuracy(result.answers, reference_answers[window_size])
        records.append(
            SweepRecord(
                program="P",
                window_size=window_size,
                latency_ms=latency,
                accuracy=accuracy,
                duplication_ratio=0.0,
            )
        )
    table = render_accuracy_table(records, title="Figure 8: accuracy (program P)")
    path = write_result_table("figure08.txt", table)
    assert path.exists()
    for record in records:
        assert record.accuracy["PR_Dep"] == 1.0
