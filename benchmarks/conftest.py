"""Shared fixtures for the benchmark harness.

Every figure of the paper's evaluation (Figures 7-10) has a dedicated
benchmark module.  The latency benchmarks time the actual reasoner calls via
pytest-benchmark; the accuracy benchmarks score the partitioned answers
against the unpartitioned reasoner.  Each module also renders the paper-style
series table into ``benchmarks/results/`` so a complete run regenerates the
figures as plain text (see EXPERIMENTS.md for the recorded output).

Window sizes default to a 10x scaled-down sweep of the paper's 5k..40k (the
pure-Python grounder is roughly an order of magnitude slower per item than
Clingo's C++ grounder).  Set ``REPRO_PAPER_SCALE=1`` to run the original
sizes, or ``REPRO_BENCH_WINDOWS=500,1000,...`` for a custom sweep.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.experiments.config import PAPER_WINDOW_SIZES, paper_scale_enabled
from repro.experiments.runner import ReasonerSuite, build_reasoner_suite
from repro.programs.traffic import INPUT_PREDICATES
from repro.streaming.generator import SyntheticStreamConfig, generate_window

RESULTS_DIRECTORY = Path(__file__).parent / "results"

#: Default benchmark sweep: the paper's sweep scaled down by 10x.
DEFAULT_BENCH_WINDOWS: Tuple[int, ...] = (500, 1000, 1500, 2000, 2500, 3000, 3500, 4000)

#: Random partition counts compared in the paper.
RANDOM_KS: Tuple[int, ...] = (2, 3, 4, 5)

BENCH_SEED = 2017


def bench_window_sizes() -> Tuple[int, ...]:
    """Resolve the window sizes used by the benchmark harness."""
    custom = os.environ.get("REPRO_BENCH_WINDOWS", "").strip()
    if custom:
        return tuple(int(part) for part in custom.split(",") if part.strip())
    if paper_scale_enabled():
        return PAPER_WINDOW_SIZES
    return DEFAULT_BENCH_WINDOWS


def make_window(window_size: int, seed: int = BENCH_SEED) -> list:
    """One reproducible synthetic traffic window of ``window_size`` triples."""
    config = SyntheticStreamConfig(
        window_size=window_size,
        input_predicates=INPUT_PREDICATES,
        scheme="traffic",
        seed=seed + window_size,
    )
    return generate_window(config)


def write_result_table(filename: str, content: str) -> Path:
    """Persist a rendered series table under benchmarks/results/."""
    RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIRECTORY / filename
    path.write_text(content + "\n")
    return path


@pytest.fixture(scope="session")
def window_sizes() -> Tuple[int, ...]:
    return bench_window_sizes()


@pytest.fixture(scope="session")
def suite_p() -> ReasonerSuite:
    """R, PR_Dep and PR_Ran_k2..k5 over program P."""
    return build_reasoner_suite("P", random_partition_counts=RANDOM_KS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def suite_p_prime() -> ReasonerSuite:
    """R, PR_Dep and PR_Ran_k2..k5 over program P'."""
    return build_reasoner_suite("P_prime", random_partition_counts=RANDOM_KS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def windows(window_sizes) -> Dict[int, list]:
    """Pre-generated windows shared by all benchmarks (generation excluded from timing)."""
    return {size: make_window(size) for size in window_sizes}
