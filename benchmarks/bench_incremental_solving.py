#!/usr/bin/env python3
"""Incremental solving vs from-scratch solving across slide/size ratios.

Delta-grounding repairs the *instantiation* between overlapping windows,
but every window still solved from scratch: the well-founded fixpoint
re-derived every fact of the window and the completion was rebuilt whenever
a search was needed.  With a :class:`SolverCache` attached, each delta
track keeps persistent solver state -- cached well-founded strata over the
relevant subprogram plus a selector-guarded completion encoding -- that is
repaired from the window's rule/fact diff and re-solved under assumptions.

This benchmark quantifies the saving as a function of the slide/size ratio
on the paper's synthetic traffic workload:

* per-ratio comparison of total and steady-state median per-window
  *solving* time, scratch (delta-grounding only) vs incremental
  (delta-grounding + solver cache), with identical answer sets asserted
  window by window,
* reuse metrics: assumption re-solves vs full solves, encoding repairs,
  and learned/encoding clauses retained vs dropped,
* a *unit-propagation* microbenchmark: a long implication chain is solved
  under a single assumption, pricing raw literal propagation through the
  solver's int-indexed assignment arrays (the hot loop the interned-id
  refactor moved off dict-of-Atom lookups).

Expectation: the incremental path wins for overlapping windows (the focal
acceptance ratio is slide = size/8) because the scratch well-founded
fixpoint is O(window) per window while the repair touches only the slide's
churn.  Medians exclude the first window (the one-time state build).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_solving.py [--quick]

Options::

    --quick           small windows / short stream (CI smoke run)
    --window-size N   triples per window
    --stream-length N triples in the stream
    --ratios R1,R2    comma-separated slide/size ratios (default 0.125,0.25,0.5)
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import write_bench_json  # noqa: E402
from repro.asp.grounding import GroundingCache  # noqa: E402
from repro.asp.solving.incremental import SolverCache  # noqa: E402
from repro.asp.solving.sat import DPLLSolver, Satisfiability  # noqa: E402
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program  # noqa: E402
from repro.streaming.generator import SyntheticStreamConfig, generate_window  # noqa: E402
from repro.streaming.window import CountWindow  # noqa: E402
from repro.streamrule.reasoner import Reasoner  # noqa: E402

RESULTS_DIRECTORY = Path(__file__).parent / "results"
BENCH_SEED = 2017


def make_stream(length: int) -> list:
    config = SyntheticStreamConfig(
        window_size=length,
        input_predicates=INPUT_PREDICATES,
        scheme="traffic",
        seed=BENCH_SEED,
    )
    return generate_window(config)


def run_windows(stream: Sequence, window: CountWindow, use_solver_cache: bool) -> Dict[str, object]:
    """Evaluate every window; return solving-time and reuse statistics."""
    solver_cache = SolverCache() if use_solver_cache else None
    reasoner = Reasoner(
        traffic_program(),
        INPUT_PREDICATES,
        EVENT_PREDICATES,
        grounding_cache=GroundingCache(),
        solver_cache=solver_cache,
    )
    solving_ms: List[float] = []
    answers: List[frozenset] = []
    resolves = 0
    repairs = 0
    retained = 0
    dropped = 0
    for delta in window.deltas(stream):
        result = reasoner.reason(list(delta.window), delta=delta)
        solving_ms.append(result.metrics.breakdown.solving_seconds * 1000.0)
        answers.append(frozenset(result.answers))
        resolves += result.metrics.assumption_resolves
        repairs += result.metrics.encoding_repairs
        retained += result.metrics.solver_clauses_retained
        dropped += result.metrics.solver_clauses_dropped
    return {
        "windows": float(len(solving_ms)),
        "total_ms": sum(solving_ms),
        "median_ms": statistics.median(solving_ms) if solving_ms else 0.0,
        "steady_median_ms": statistics.median(solving_ms[1:]) if len(solving_ms) > 1 else 0.0,
        "resolves": float(resolves),
        "repairs": float(repairs),
        "retained": float(retained),
        "dropped": float(dropped),
        "answers": answers,
    }


def ratio_section(
    stream: Sequence, window_size: int, ratios: Sequence[float], metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    lines = [
        f"{'slide/size':<12}{'windows':>8}{'scratch ms':>11}{'incr ms':>10}{'speed-up':>10}"
        f"{'steady x':>10}{'re-solves':>10}{'repairs':>9}{'kept':>7}",
    ]
    verdicts: List[Tuple[float, float, bool]] = []
    for ratio in ratios:
        slide = max(1, int(window_size * ratio))
        window = CountWindow(size=window_size, slide=slide)
        scratch = run_windows(stream, window, use_solver_cache=False)
        incremental = run_windows(stream, window, use_solver_cache=True)
        identical = scratch["answers"] == incremental["answers"]
        speedup = (
            scratch["total_ms"] / incremental["total_ms"] if incremental["total_ms"] else float("inf")
        )
        steady = (
            scratch["steady_median_ms"] / incremental["steady_median_ms"]
            if incremental["steady_median_ms"]
            else float("inf")
        )
        lines.append(
            f"{ratio:<12.3f}{int(scratch['windows']):>8}{scratch['total_ms']:>11.1f}"
            f"{incremental['total_ms']:>10.1f}{speedup:>10.2f}{steady:>10.2f}"
            f"{int(incremental['resolves']):>10}{int(incremental['repairs']):>9}"
            f"{int(incremental['retained']):>7}"
        )
        verdicts.append((ratio, steady, identical))
        if metrics is not None:
            metrics[f"total_solve_speedup_r{ratio:g}"] = speedup
            metrics[f"steady_solve_speedup_r{ratio:g}"] = steady
            metrics[f"answers_identical_r{ratio:g}"] = 1.0 if identical else 0.0
    lines.append("")
    lines.append("steady x = median per-window solving ratio after the first window")
    lines.append("(excludes the one-time solver-state build); kept = clauses retained")
    lines.append("across repairs.  Answer sets are compared window by window.")
    if not all(identical for _, _, identical in verdicts):
        lines.append("ANSWER MISMATCH: incremental solving diverged from scratch solving")
    focal = [steady for ratio, steady, _ in verdicts if abs(ratio - 0.125) < 1e-9]
    if focal:
        verdict = "PASS" if focal[0] >= 1.5 and all(identical for _, _, identical in verdicts) else "MISS"
        lines.append(f"steady-state incremental solving >= 1.5x at slide = size/8: {verdict}")
    return lines


def propagation_section(
    variables: int, repeats: int, metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    """Price raw unit propagation on an implication chain.

    ``x1 -> x2 -> ... -> xn`` solved under the assumption ``x1``: every
    clause fires exactly once, so the run is a pure cascade through the
    solver's assignment/watch arrays with no search.  The reported rate is
    literals propagated per second (best of ``repeats``).
    """
    solver = DPLLSolver(variables)
    solver.add_clauses([-index, index + 1] for index in range(1, variables))
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        verdict, model = solver.solve(assumptions=[1])
        best = min(best, time.perf_counter() - started)
    assert verdict is Satisfiability.SATISFIABLE and model is not None
    assert all(model.get(index, False) for index in range(1, variables + 1))
    rate = variables / best if best else float("inf")
    if metrics is not None:
        metrics["sat_propagation_rate"] = rate
    return [
        f"Unit propagation on a {variables}-variable implication chain (best of {repeats})",
        f"{'cascade s':>10}{'literals/s':>14}",
        f"{best:>10.4f}{rate:>14.0f}",
    ]


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def ratio_list(text: str) -> Tuple[float, ...]:
    try:
        ratios = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ratios, got {text!r}")
    if not ratios or any(not 0.0 < ratio <= 1.0 for ratio in ratios):
        raise argparse.ArgumentTypeError("ratios must be in (0, 1]")
    return ratios


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true", help="CI smoke run: small windows, short stream")
    parser.add_argument("--window-size", type=positive_int, default=None, help="triples per window")
    parser.add_argument("--stream-length", type=positive_int, default=None, help="triples in the stream")
    parser.add_argument("--ratios", type=ratio_list, default=None, help="slide/size ratios to sweep")
    parser.add_argument("--no-write", action="store_true", help="do not write benchmarks/results/")
    arguments = parser.parse_args(argv)

    window_size = arguments.window_size if arguments.window_size is not None else (400 if arguments.quick else 2000)
    stream_length = (
        arguments.stream_length
        if arguments.stream_length is not None
        else (window_size * 6 if arguments.quick else window_size * 10)
    )
    ratios = arguments.ratios or (0.125, 0.25, 0.5)

    lines = [
        "bench_incremental_solving",
        f"stream: {stream_length} triples, traffic scheme, seed {BENCH_SEED}; window size {window_size}",
        "scratch = delta-grounding only (solves from scratch); incr = + solver cache",
        "",
    ]
    stream = make_stream(stream_length)
    metrics: Dict[str, float] = {}
    lines += ratio_section(stream, window_size, ratios, metrics)
    lines.append("")
    lines += propagation_section(
        variables=2_000 if arguments.quick else 20_000, repeats=3, metrics=metrics
    )

    report = "\n".join(lines)
    print(report)
    if not arguments.no_write:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / "incremental_solving.txt"
        path.write_text(report + "\n")
        bench_path = write_bench_json(
            "incremental_solving",
            metrics,
            meta={"window_size": window_size, "stream_length": stream_length, "quick": arguments.quick},
        )
        print(f"\nwritten to {path} and {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
