"""Figure 9: reasoning latency over window size, program P'.

P' has a *connected* input dependency graph, so the dependency-based
partitioning plan duplicates ``car_number`` into both partitions.  The
paper's qualitative results: PR_Dep still clearly beats R, but processing
the duplicated predicate adds up to ~30% latency compared to the
duplication-free plan of P.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import RANDOM_KS, bench_window_sizes

WINDOW_SIZES = bench_window_sizes()
CONFIGURATIONS = ["R", "PR_Dep"] + [f"PR_Ran_k{k}" for k in RANDOM_KS]


def _reasoner_for(suite, label):
    if label == "R":
        return suite.baseline
    if label == "PR_Dep":
        return suite.dependency
    return suite.random[int(label.rsplit("k", 1)[1])]


@pytest.mark.parametrize("window_size", WINDOW_SIZES)
@pytest.mark.parametrize("label", CONFIGURATIONS)
def test_fig09_latency_program_p_prime(benchmark, suite_p_prime, windows, label, window_size):
    """Time one window evaluation for every configuration and window size."""
    window = windows[window_size]
    reasoner = _reasoner_for(suite_p_prime, label)

    result = benchmark.pedantic(reasoner.reason, args=(window,), rounds=1, iterations=1, warmup_rounds=0)

    benchmark.group = f"fig09 latency P' (window={window_size})"
    benchmark.extra_info["figure"] = 9
    benchmark.extra_info["program"] = "P_prime"
    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["window_size"] = window_size
    benchmark.extra_info["reported_latency_ms"] = result.metrics.latency_milliseconds
    if label == "PR_Dep":
        benchmark.extra_info["duplication_ratio"] = round(result.metrics.duplication_ratio, 4)

    assert result.metrics.latency_seconds > 0


def test_fig09_duplication_plan_is_used(suite_p_prime):
    """The partitioning plan for P' duplicates exactly car_number (Figure 5)."""
    assert suite_p_prime.decomposition.duplicated_predicates == frozenset({"car_number"})


def test_fig09_dependency_partitioning_still_beats_whole_window(suite_p_prime, windows):
    largest = max(windows)
    window = windows[largest]
    latency_r = suite_p_prime.baseline.reason(window).metrics.latency_milliseconds
    latency_dep = suite_p_prime.dependency.reason(window).metrics.latency_milliseconds
    assert latency_dep < latency_r
