"""Figure 10: accuracy over window size, program P'.

Despite the duplicated predicate, dependency-based partitioning keeps the
accuracy at 1.0 ("the accuracy of the answers remains the same as that for
P"), while random partitioning degrades exactly as in Figure 8.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import RANDOM_KS, bench_window_sizes
from repro.core.accuracy import mean_accuracy

WINDOW_SIZES = bench_window_sizes()
PARTITIONED = ["PR_Dep"] + [f"PR_Ran_k{k}" for k in RANDOM_KS]


def _reasoner_for(suite, label):
    if label == "PR_Dep":
        return suite.dependency
    return suite.random[int(label.rsplit("k", 1)[1])]


@pytest.fixture(scope="module")
def reference_answers(suite_p_prime, windows):
    """Answers of the unpartitioned reasoner R over P', per window size."""
    return {size: suite_p_prime.baseline.reason(window).answers for size, window in windows.items()}


@pytest.mark.parametrize("window_size", WINDOW_SIZES)
@pytest.mark.parametrize("label", PARTITIONED)
def test_fig10_accuracy_program_p_prime(
    benchmark, suite_p_prime, windows, reference_answers, label, window_size
):
    """Measure the partitioned reasoner over P' and score against R."""
    window = windows[window_size]
    reasoner = _reasoner_for(suite_p_prime, label)

    result = benchmark.pedantic(reasoner.reason, args=(window,), rounds=1, iterations=1, warmup_rounds=0)
    accuracy = mean_accuracy(result.answers, reference_answers[window_size])

    benchmark.group = f"fig10 accuracy P' (window={window_size})"
    benchmark.extra_info["figure"] = 10
    benchmark.extra_info["program"] = "P_prime"
    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["window_size"] = window_size
    benchmark.extra_info["accuracy"] = round(accuracy, 4)

    assert 0.0 <= accuracy <= 1.0
    if label == "PR_Dep":
        assert accuracy == 1.0
