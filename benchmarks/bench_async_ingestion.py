#!/usr/bin/env python3
"""Producer throughput: synchronous vs pipelined ingestion per backend.

The paper's premise is sustained input rates: the producer must keep feeding
the stream while the reasoners work.  Before pipelining, ``StreamSession.push``
blocked on every completed window -- the producer idled for exactly as long
as the slowest partition reasoned, wasting the concurrency the thread /
process / TCP backends provide.  With pipelined ingestion
(``max_inflight > 1``) push dispatches the window and returns; this
benchmark prices the difference on the paper's synthetic traffic workload:

* per backend (thread pool, pinned process pool, TCP worker fleet), the
  same tumbling window stream is pushed item by item twice -- once with
  ``max_inflight=1`` (the pre-pipelining synchronous loop) and once
  pipelined -- and both the *producer-side* throughput (items/s of the push
  loop alone) and the *end-to-end* throughput (push + finish + drain) are
  reported, along with the backpressure counters;
* both runs must produce identical answer sets (asserted), so the speed-up
  is never bought with correctness.

Producer-side speed-up appears on any host (the push loop stops waiting out
round trips); end-to-end speed-up on multi-worker backends additionally
needs real cores, so the script prints the host's CPU count next to the
verdict.  The acceptance bar (see ISSUE/CI): pipelined push >= 1.3x producer
throughput over synchronous on a >= 2-worker backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_ingestion.py [--quick]

Options::

    --quick          small windows / few repeats (CI smoke run)
    --window-size N  triples per window
    --windows N      windows in the stream
    --max-inflight N pipelined in-flight bound (default 8)
    --workers N      worker count per backend (default 2)
    --no-tcp         skip the TCP fleet section (no subprocesses spawned)
    --no-write       do not write benchmarks/results/ or BENCH_*.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import write_bench_json  # noqa: E402
from repro.asp.grounding import GroundingCache  # noqa: E402
from repro.core.partitioner import HashPartitioner  # noqa: E402
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program  # noqa: E402
from repro.streaming.generator import SyntheticStreamConfig, generate_window  # noqa: E402
from repro.streaming.window import CountWindow  # noqa: E402
from repro.streamrule.backends import (  # noqa: E402
    ExecutionBackend,
    ProcessPoolBackend,
    TcpBackend,
    ThreadPoolBackend,
)
from repro.streamrule.reasoner import Reasoner  # noqa: E402
from repro.streamrule.session import StreamSession  # noqa: E402
from repro.streamrule.worker import spawn_local_workers  # noqa: E402

RESULTS_DIRECTORY = Path(__file__).parent / "results"
BENCH_SEED = 2017

#: The acceptance bar for the producer-side speed-up on multi-worker backends.
TARGET_PRODUCER_SPEEDUP = 1.3


def make_stream(window_count: int, window_size: int) -> List[list]:
    windows = []
    for index in range(window_count):
        config = SyntheticStreamConfig(
            window_size=window_size,
            input_predicates=INPUT_PREDICATES,
            scheme="traffic",
            seed=BENCH_SEED + index,
        )
        windows.append(generate_window(config))
    return windows


def run_ingestion(
    backend: ExecutionBackend,
    windows: Sequence[list],
    window_size: int,
    max_inflight: int,
    partitions: int,
) -> Dict[str, object]:
    """Push the stream item by item; time the push loop and the whole run."""
    reasoner = Reasoner(
        traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
    )
    stream = [triple for window in windows for triple in window]
    with StreamSession(
        reasoner,
        window=CountWindow(size=window_size, emit_partial=False),
        partitioner=HashPartitioner(partitions),
        backend=backend,
        max_inflight=max_inflight,
    ) as session:
        session.backend.start(reasoner)  # pool/fleet spin-up outside the timed region
        started = time.perf_counter()
        for triple in stream:
            session.push([triple])
        producer_seconds = time.perf_counter() - started
        session.finish()
        answers = [
            {frozenset(answer) for answer in solution.answers} for solution in session.results()
        ]
        total_seconds = time.perf_counter() - started
        ingestion = session.ingestion
    items = len(stream)
    return {
        "producer_seconds": producer_seconds,
        "total_seconds": total_seconds,
        "producer_throughput": items / producer_seconds if producer_seconds else float("inf"),
        "e2e_throughput": items / total_seconds if total_seconds else float("inf"),
        "answers": answers,
        "stalls": ingestion.backpressure_stalls,
        "high_water": ingestion.inflight_high_water,
        "dispatched_ahead": ingestion.dispatched_ahead,
    }


def backend_comparison(
    label: str,
    backend_factory: Callable[[], ExecutionBackend],
    windows: Sequence[list],
    window_size: int,
    max_inflight: int,
    partitions: int,
    metrics: Dict[str, float],
) -> List[str]:
    """One backend, two runs: max_inflight=1 vs the pipelined bound."""
    sync = run_ingestion(backend_factory(), windows, window_size, 1, partitions)
    piped = run_ingestion(backend_factory(), windows, window_size, max_inflight, partitions)
    if sync["answers"] != piped["answers"]:
        raise AssertionError(f"{label}: pipelined answers diverged from the synchronous run")
    producer_speedup = sync["producer_seconds"] / piped["producer_seconds"] if piped["producer_seconds"] else float("inf")
    e2e_speedup = sync["total_seconds"] / piped["total_seconds"] if piped["total_seconds"] else float("inf")
    metrics[f"producer_speedup_{label}"] = producer_speedup
    metrics[f"e2e_speedup_{label}"] = e2e_speedup
    verdict = "PASS" if producer_speedup >= TARGET_PRODUCER_SPEEDUP else "MISS"
    return [
        f"{label} (answers identical across both runs)",
        f"{'mode':<16}{'push s':>9}{'total s':>9}{'push items/s':>14}{'e2e items/s':>13}"
        f"{'stalls':>8}{'inflight':>10}",
        f"{'sync (1)':<16}{sync['producer_seconds']:>9.3f}{sync['total_seconds']:>9.3f}"
        f"{sync['producer_throughput']:>14.0f}{sync['e2e_throughput']:>13.0f}"
        f"{sync['stalls']:>8}{sync['high_water']:>10}",
        f"{f'pipelined ({max_inflight})':<16}{piped['producer_seconds']:>9.3f}{piped['total_seconds']:>9.3f}"
        f"{piped['producer_throughput']:>14.0f}{piped['e2e_throughput']:>13.0f}"
        f"{piped['stalls']:>8}{piped['high_water']:>10}",
        f"producer speed-up: {producer_speedup:.2f}x (target >= {TARGET_PRODUCER_SPEEDUP}x: {verdict}); "
        f"end-to-end: {e2e_speedup:.2f}x",
    ]


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true", help="CI smoke run: small windows, few repeats")
    parser.add_argument("--window-size", type=positive_int, default=None, help="triples per window")
    parser.add_argument("--windows", type=positive_int, default=None, help="windows in the stream")
    parser.add_argument("--max-inflight", type=positive_int, default=8, help="pipelined in-flight bound")
    parser.add_argument("--workers", type=positive_int, default=2, help="worker count per backend")
    parser.add_argument("--no-tcp", action="store_true", help="skip the TCP worker-fleet section")
    parser.add_argument("--no-write", action="store_true", help="do not write results/ or BENCH_*.json")
    arguments = parser.parse_args(argv)

    window_size = arguments.window_size if arguments.window_size is not None else (150 if arguments.quick else 800)
    window_count = arguments.windows if arguments.windows is not None else (6 if arguments.quick else 10)
    workers = arguments.workers
    partitions = workers

    lines = [
        "bench_async_ingestion",
        f"host cores: {os.cpu_count()}  (end-to-end speed-up > 1 requires > 1 core;",
        "producer-side speed-up only needs the push loop to stop waiting)",
        f"stream: {window_count} x {window_size} triples, tumbling windows, traffic scheme, "
        f"seed {BENCH_SEED}; k = {partitions} partitions, {workers} workers",
        "",
    ]
    windows = make_stream(window_count, window_size)
    metrics: Dict[str, float] = {}

    lines += backend_comparison(
        "threads",
        lambda: ThreadPoolBackend(max_workers=workers),
        windows, window_size, arguments.max_inflight, partitions, metrics,
    )
    lines.append("")
    lines += backend_comparison(
        "processes",
        lambda: ProcessPoolBackend(max_workers=workers),
        windows, window_size, arguments.max_inflight, partitions, metrics,
    )

    if not arguments.no_tcp:
        fleet = spawn_local_workers(workers)
        try:
            endpoints = [worker.endpoint for worker in fleet]
            lines.append("")
            lines += backend_comparison(
                "tcp",
                lambda: TcpBackend(endpoints),
                windows, window_size, arguments.max_inflight, partitions, metrics,
            )
        finally:
            for worker in fleet:
                worker.terminate()

    report = "\n".join(lines)
    print(report)
    if not arguments.no_write:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / "async_ingestion.txt"
        path.write_text(report + "\n")
        bench_path = write_bench_json(
            "async_ingestion",
            metrics,
            meta={
                "window_size": window_size,
                "windows": window_count,
                "workers": workers,
                "max_inflight": arguments.max_inflight,
                "quick": arguments.quick,
            },
        )
        print(f"\nwritten to {path} and {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
