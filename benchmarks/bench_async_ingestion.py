#!/usr/bin/env python3
"""Producer throughput: synchronous vs pipelined ingestion per backend.

The paper's premise is sustained input rates: the producer must keep feeding
the stream while the reasoners work.  Before pipelining, ``StreamSession.push``
blocked on every completed window -- the producer idled for exactly as long
as the slowest partition reasoned, wasting the concurrency the thread /
process / TCP backends provide.  With pipelined ingestion
(``max_inflight > 1``) push dispatches the window and returns; this
benchmark prices the difference on the paper's synthetic traffic workload:

* per backend (thread pool, pinned process pool, TCP worker fleet), the
  same tumbling window stream is pushed item by item twice -- once with
  ``max_inflight=1`` (the pre-pipelining synchronous loop) and once
  pipelined -- and both the *producer-side* throughput (items/s of the push
  loop alone) and the *end-to-end* throughput (push + finish + drain) are
  reported, along with the backpressure counters;
* both runs must produce identical answer sets (asserted), so the speed-up
  is never bought with correctness.

Producer-side speed-up appears on any host (the push loop stops waiting out
round trips); end-to-end speed-up on multi-worker backends additionally
needs real cores, so the script prints the host's CPU count next to the
verdict.  The acceptance bar (see ISSUE/CI): pipelined push >= 1.3x producer
throughput over synchronous on a >= 2-worker backend.

Two serving-layer sections ride along (see ``docs/async-serving.md``):

* **adaptive vs fixed in-flight** -- the same stream through a deliberately
  overloaded single-worker backend, once with ``max_inflight=4`` and once
  with ``max_inflight="adaptive"``.  A fixed bound queues every window
  behind up to 3 predecessors, so dispatch-to-gather latency is ~4x one
  evaluation; the AIMD controller backs the bound off to the floor and the
  p99 collapses toward ~1x while throughput stays worker-bound.  Gated as
  ``adaptive_vs_fixed_p99`` (fixed p99 / adaptive p99, higher is better)
  and ``adaptive_vs_fixed_throughput`` (must stay ~1.0).
* **asyncio many-sessions** -- N ``AsyncStreamSession`` instances
  multiplexed on one event loop over one shared backend, the serving
  shape.  Reported as windows/s per core and gated as
  ``async_sessions_throughput``.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_ingestion.py [--quick]

Options::

    --quick          small windows / few repeats (CI smoke run)
    --window-size N  triples per window
    --windows N      windows in the stream
    --max-inflight N pipelined in-flight bound (default 8)
    --workers N      worker count per backend (default 2)
    --no-tcp         skip the TCP fleet section (no subprocesses spawned)
    --no-write       do not write benchmarks/results/ or BENCH_*.json
"""

from __future__ import annotations

import argparse
import asyncio
import math
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import write_bench_json  # noqa: E402
from repro.asp.grounding import GroundingCache  # noqa: E402
from repro.core.partitioner import HashPartitioner  # noqa: E402
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program  # noqa: E402
from repro.streaming.generator import SyntheticStreamConfig, generate_window  # noqa: E402
from repro.streaming.window import CountWindow  # noqa: E402
from repro.streamrule.aio import AsyncStreamSession  # noqa: E402
from repro.streamrule.backends import (  # noqa: E402
    ExecutionBackend,
    ProcessPoolBackend,
    TcpBackend,
    ThreadPoolBackend,
)
from repro.streamrule.reasoner import Reasoner  # noqa: E402
from repro.streamrule.session import StreamSession  # noqa: E402
from repro.streamrule.worker import spawn_local_workers  # noqa: E402

RESULTS_DIRECTORY = Path(__file__).parent / "results"
BENCH_SEED = 2017

#: The acceptance bar for the producer-side speed-up on multi-worker backends.
TARGET_PRODUCER_SPEEDUP = 1.3


def make_stream(window_count: int, window_size: int) -> List[list]:
    windows = []
    for index in range(window_count):
        config = SyntheticStreamConfig(
            window_size=window_size,
            input_predicates=INPUT_PREDICATES,
            scheme="traffic",
            seed=BENCH_SEED + index,
        )
        windows.append(generate_window(config))
    return windows


def run_ingestion(
    backend: ExecutionBackend,
    windows: Sequence[list],
    window_size: int,
    max_inflight: int,
    partitions: int,
) -> Dict[str, object]:
    """Push the stream item by item; time the push loop and the whole run."""
    reasoner = Reasoner(
        traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
    )
    stream = [triple for window in windows for triple in window]
    with StreamSession(
        reasoner,
        window=CountWindow(size=window_size, emit_partial=False),
        partitioner=HashPartitioner(partitions),
        backend=backend,
        max_inflight=max_inflight,
    ) as session:
        session.backend.start(reasoner)  # pool/fleet spin-up outside the timed region
        started = time.perf_counter()
        for triple in stream:
            session.push([triple])
        producer_seconds = time.perf_counter() - started
        session.finish()
        answers = [
            {frozenset(answer) for answer in solution.answers} for solution in session.results()
        ]
        total_seconds = time.perf_counter() - started
        ingestion = session.ingestion
    items = len(stream)
    return {
        "producer_seconds": producer_seconds,
        "total_seconds": total_seconds,
        "producer_throughput": items / producer_seconds if producer_seconds else float("inf"),
        "e2e_throughput": items / total_seconds if total_seconds else float("inf"),
        "answers": answers,
        "stalls": ingestion.backpressure_stalls,
        "high_water": ingestion.inflight_high_water,
        "dispatched_ahead": ingestion.dispatched_ahead,
    }


def backend_comparison(
    label: str,
    backend_factory: Callable[[], ExecutionBackend],
    windows: Sequence[list],
    window_size: int,
    max_inflight: int,
    partitions: int,
    metrics: Dict[str, float],
) -> List[str]:
    """One backend, two runs: max_inflight=1 vs the pipelined bound."""
    sync = run_ingestion(backend_factory(), windows, window_size, 1, partitions)
    piped = run_ingestion(backend_factory(), windows, window_size, max_inflight, partitions)
    if sync["answers"] != piped["answers"]:
        raise AssertionError(f"{label}: pipelined answers diverged from the synchronous run")
    producer_speedup = sync["producer_seconds"] / piped["producer_seconds"] if piped["producer_seconds"] else float("inf")
    e2e_speedup = sync["total_seconds"] / piped["total_seconds"] if piped["total_seconds"] else float("inf")
    metrics[f"producer_speedup_{label}"] = producer_speedup
    metrics[f"e2e_speedup_{label}"] = e2e_speedup
    verdict = "PASS" if producer_speedup >= TARGET_PRODUCER_SPEEDUP else "MISS"
    return [
        f"{label} (answers identical across both runs)",
        f"{'mode':<16}{'push s':>9}{'total s':>9}{'push items/s':>14}{'e2e items/s':>13}"
        f"{'stalls':>8}{'inflight':>10}",
        f"{'sync (1)':<16}{sync['producer_seconds']:>9.3f}{sync['total_seconds']:>9.3f}"
        f"{sync['producer_throughput']:>14.0f}{sync['e2e_throughput']:>13.0f}"
        f"{sync['stalls']:>8}{sync['high_water']:>10}",
        f"{f'pipelined ({max_inflight})':<16}{piped['producer_seconds']:>9.3f}{piped['total_seconds']:>9.3f}"
        f"{piped['producer_throughput']:>14.0f}{piped['e2e_throughput']:>13.0f}"
        f"{piped['stalls']:>8}{piped['high_water']:>10}",
        f"producer speed-up: {producer_speedup:.2f}x (target >= {TARGET_PRODUCER_SPEEDUP}x: {verdict}); "
        f"end-to-end: {e2e_speedup:.2f}x",
    ]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 1]) of ``values``."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * q
    low, high = math.floor(position), math.ceil(position)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


class _LatencyRecordingSession(StreamSession):
    """A session that records each window's dispatch-to-gather latency."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.window_latencies: List[float] = []

    def _gather_solution(self, pending):
        solution = super()._gather_solution(pending)
        # Recorded after the gather completes: dispatch-to-solution time,
        # including any blocking wait on the window's futures.
        self.window_latencies.append(time.perf_counter() - pending.dispatched_at)
        return solution


class _OverloadedBackend(ThreadPoolBackend):
    """A 1-worker backend padded to a fixed per-item service time.

    The pad makes the overload decisive and machine-independent: the
    producer generates windows faster than the worker can serve them on
    any host, so the gated p99 ratio measures the *scheduling* difference
    between a fixed bound and the AIMD controller, not solver speed.
    """

    name = "overloaded-threads"

    def __init__(self, delay: float, **kwargs):
        super().__init__(**kwargs)
        self.delay = delay

    def _submit(self, item):
        reasoner = self._require_started()
        assert self._pool is not None

        def _evaluate():
            time.sleep(self.delay)
            return reasoner.reason_item(item)

        return self._pool.submit(_evaluate)


def adaptive_vs_fixed(
    window_count: int,
    window_size: int,
    service_delay: float,
    metrics: Dict[str, float],
) -> List[str]:
    """Fixed ``max_inflight=4`` vs AIMD on an overloaded 1-worker backend.

    The stream is long enough for the pipe to reach steady state: with a
    fixed bound every window then waits out ~``bound`` service times before
    its gather, which is exactly the latency the AIMD controller trades
    away by backing off to the floor.
    """
    windows = make_stream(window_count, window_size)
    stream = [triple for window in windows for triple in window]

    def run(max_inflight):
        reasoner = Reasoner(
            traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
        )
        with _LatencyRecordingSession(
            reasoner,
            window=CountWindow(size=window_size, emit_partial=False),
            backend=_OverloadedBackend(service_delay, max_workers=1),
            max_inflight=max_inflight,
        ) as session:
            session.backend.start(reasoner)
            started = time.perf_counter()
            for triple in stream:
                session.push([triple])
            session.finish()
            answers = [
                {frozenset(answer) for answer in solution.answers} for solution in session.results()
            ]
            seconds = time.perf_counter() - started
            latencies = list(session.window_latencies)
            ingestion = session.ingestion
        return answers, latencies, seconds, ingestion

    fixed_answers, fixed_latencies, fixed_seconds, _ = run(4)
    adaptive_answers, adaptive_latencies, adaptive_seconds, adaptive_ingestion = run("adaptive")
    if fixed_answers != adaptive_answers:
        raise AssertionError("adaptive answers diverged from the fixed-bound run")

    # Steady-state percentiles: the first windows are warmup in both runs
    # (pipe filling on the fixed bound; AIMD converging on the adaptive
    # one) and would otherwise dominate the p99 of a short stream.
    warmup = min(8, len(fixed_latencies) // 3)
    fixed_steady = fixed_latencies[warmup:]
    adaptive_steady = adaptive_latencies[warmup:]
    fixed_p50, fixed_p99 = percentile(fixed_steady, 0.5), percentile(fixed_steady, 0.99)
    adaptive_p50 = percentile(adaptive_steady, 0.5)
    adaptive_p99 = percentile(adaptive_steady, 0.99)
    p99_ratio = fixed_p99 / adaptive_p99 if adaptive_p99 else float("inf")
    throughput_ratio = fixed_seconds / adaptive_seconds if adaptive_seconds else float("inf")
    metrics["adaptive_vs_fixed_p99"] = p99_ratio
    metrics["adaptive_vs_fixed_throughput"] = throughput_ratio
    return [
        "adaptive vs fixed in-flight (1 worker, overloaded; answers identical)",
        f"{'mode':<16}{'p50 ms':>9}{'p99 ms':>9}{'total s':>9}{'backoffs':>10}{'target':>8}",
        f"{'fixed (4)':<16}{fixed_p50 * 1e3:>9.1f}{fixed_p99 * 1e3:>9.1f}{fixed_seconds:>9.3f}"
        f"{'-':>10}{'-':>8}",
        f"{'adaptive':<16}{adaptive_p50 * 1e3:>9.1f}{adaptive_p99 * 1e3:>9.1f}"
        f"{adaptive_seconds:>9.3f}{adaptive_ingestion.aimd_backoffs:>10}"
        f"{adaptive_ingestion.inflight_target:>8}",
        f"p99 latency: adaptive {p99_ratio:.2f}x better; "
        f"throughput ratio (fixed/adaptive seconds): {throughput_ratio:.2f}",
    ]


def async_many_sessions(
    session_count: int,
    windows_per_session: int,
    window_size: int,
    workers: int,
    metrics: Dict[str, float],
) -> List[str]:
    """N asyncio sessions on one loop over one shared thread backend."""
    reasoner = Reasoner(
        traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=GroundingCache()
    )
    backend = ThreadPoolBackend(max_workers=workers)
    stream_windows = make_stream(windows_per_session, window_size)

    async def drive(session: AsyncStreamSession) -> int:
        for window in stream_windows:
            await session.push(window)
        await session.finish()
        return len(await session.results_list())

    async def scenario() -> float:
        sessions = [
            AsyncStreamSession(
                reasoner,
                window=CountWindow(size=window_size, emit_partial=False),
                backend=backend,
                max_inflight="adaptive",
                owns_backend=False,
                track_base=1000 * index,
            )
            for index in range(session_count)
        ]
        started = time.perf_counter()
        emitted = await asyncio.gather(*(drive(session) for session in sessions))
        seconds = time.perf_counter() - started
        for session in sessions:
            await session.close(drain=False)
        if sum(emitted) != session_count * windows_per_session:
            raise AssertionError("a multiplexed session lost or duplicated a window")
        return seconds

    try:
        seconds = asyncio.run(scenario())
    finally:
        backend.close()
    total_windows = session_count * windows_per_session
    cores = os.cpu_count() or 1
    throughput = total_windows / seconds if seconds else float("inf")
    per_core = throughput / cores
    metrics["async_sessions_throughput"] = per_core
    return [
        f"asyncio many-sessions ({session_count} sessions x {windows_per_session} windows, "
        f"one loop, {workers} shared workers)",
        f"total: {total_windows} windows in {seconds:.3f}s = {throughput:.1f} windows/s "
        f"({per_core:.1f} windows/s/core on {cores} cores)",
    ]


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true", help="CI smoke run: small windows, few repeats")
    parser.add_argument("--window-size", type=positive_int, default=None, help="triples per window")
    parser.add_argument("--windows", type=positive_int, default=None, help="windows in the stream")
    parser.add_argument("--max-inflight", type=positive_int, default=8, help="pipelined in-flight bound")
    parser.add_argument("--workers", type=positive_int, default=2, help="worker count per backend")
    parser.add_argument("--no-tcp", action="store_true", help="skip the TCP worker-fleet section")
    parser.add_argument("--no-write", action="store_true", help="do not write results/ or BENCH_*.json")
    arguments = parser.parse_args(argv)

    window_size = arguments.window_size if arguments.window_size is not None else (150 if arguments.quick else 800)
    window_count = arguments.windows if arguments.windows is not None else (6 if arguments.quick else 10)
    workers = arguments.workers
    partitions = workers

    lines = [
        "bench_async_ingestion",
        f"host cores: {os.cpu_count()}  (end-to-end speed-up > 1 requires > 1 core;",
        "producer-side speed-up only needs the push loop to stop waiting)",
        f"stream: {window_count} x {window_size} triples, tumbling windows, traffic scheme, "
        f"seed {BENCH_SEED}; k = {partitions} partitions, {workers} workers",
        "",
    ]
    windows = make_stream(window_count, window_size)
    metrics: Dict[str, float] = {}

    lines += backend_comparison(
        "threads",
        lambda: ThreadPoolBackend(max_workers=workers),
        windows, window_size, arguments.max_inflight, partitions, metrics,
    )
    lines.append("")
    lines += backend_comparison(
        "processes",
        lambda: ProcessPoolBackend(max_workers=workers),
        windows, window_size, arguments.max_inflight, partitions, metrics,
    )

    if not arguments.no_tcp:
        fleet = spawn_local_workers(workers)
        try:
            endpoints = [worker.endpoint for worker in fleet]
            lines.append("")
            lines += backend_comparison(
                "tcp",
                lambda: TcpBackend(endpoints),
                windows, window_size, arguments.max_inflight, partitions, metrics,
            )
        finally:
            for worker in fleet:
                worker.terminate()

    overload_windows = 24 if arguments.quick else 48
    lines.append("")
    lines += adaptive_vs_fixed(overload_windows, window_size, 0.01, metrics)

    session_count = 12 if arguments.quick else 48
    windows_per_session = 4 if arguments.quick else 8
    lines.append("")
    lines += async_many_sessions(
        session_count, windows_per_session, window_size, workers, metrics
    )

    report = "\n".join(lines)
    print(report)
    if not arguments.no_write:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / "async_ingestion.txt"
        path.write_text(report + "\n")
        bench_path = write_bench_json(
            "async_ingestion",
            metrics,
            meta={
                "window_size": window_size,
                "windows": window_count,
                "workers": workers,
                "max_inflight": arguments.max_inflight,
                "quick": arguments.quick,
            },
        )
        print(f"\nwritten to {path} and {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
