"""Machine-readable benchmark emission: the ``BENCH_<name>.json`` trajectory.

Every benchmark in this directory renders a human-readable table under
``benchmarks/results/`` *and* emits one ``BENCH_<name>.json`` file at the
repository root with its headline metrics.  The JSON is the machine half of
the perf story: CI runs the quick benchmarks on every pull request, compares
the emitted metrics against the committed baseline
(``benchmarks/bench_baseline.json``) with a tolerance band
(:mod:`benchmarks.check_regression`), and uploads the files as build
artifacts -- so a slowdown of a protected hot path fails the build instead
of landing silently, and the per-commit trajectory of the numbers is
downloadable instead of empty.

Schema of one emission::

    {
      "benchmark": "<name>",
      "schema": 1,
      "meta": {...},                 # free-form run description (host, sizes)
      "metrics": {"<metric>": 1.23}  # flat name -> float
    }

Metric names are the contract between a benchmark and the baseline: rename
one and :mod:`benchmarks.check_regression` fails loudly (a missing metric is
a gate failure, never a silent skip).  Prefer *ratio* metrics (speed-ups,
overhead per window, bytes per window) over absolute wall-clock where
possible -- ratios transfer between machines, which keeps the committed
baseline meaningful on developer laptops and CI runners alike.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

__all__ = ["REPO_ROOT", "host_meta", "load_bench_json", "write_bench_json"]

#: Where the ``BENCH_*.json`` trajectory lives: the repository root.
REPO_ROOT = Path(__file__).resolve().parents[1]

SCHEMA_VERSION = 1


def host_meta() -> Dict[str, Any]:
    """Run environment recorded next to the metrics (never compared)."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def write_bench_json(
    name: str,
    metrics: Mapping[str, float],
    *,
    meta: Optional[Mapping[str, Any]] = None,
    directory: Optional[Path] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``metrics`` must be flat name -> number; values are coerced to float so
    the file diffs cleanly and the regression gate never has to guess types.
    """
    payload = {
        "benchmark": name,
        "schema": SCHEMA_VERSION,
        "meta": {**host_meta(), **(dict(meta) if meta else {})},
        "metrics": {key: float(value) for key, value in metrics.items()},
    }
    path = (directory or REPO_ROOT) / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: Path) -> Dict[str, Any]:
    """Load one emission, validating the envelope the gate depends on."""
    payload = json.loads(Path(path).read_text())
    for key in ("benchmark", "metrics"):
        if key not in payload:
            raise ValueError(f"{path}: not a BENCH emission (missing {key!r})")
    if not isinstance(payload["metrics"], dict):
        raise ValueError(f"{path}: metrics must be an object")
    return payload
