"""Ablation A1: latency overhead of duplicated predicates.

The paper reports (Section IV, experiment with P') that "time required for
processing the duplicated predicate increases latency up to 30%" with ~25%
of window instances belonging to the duplicated predicate.  This ablation
compares PR_Dep on P' (duplication) against PR_Dep on P (no duplication) on
identical windows and records the measured overhead.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_window_sizes, make_window, write_result_table
from repro.experiments.ablations import duplication_overhead

WINDOW_SIZES = bench_window_sizes()[:4]


@pytest.mark.parametrize("window_size", WINDOW_SIZES)
def test_ablation_duplication_overhead(benchmark, suite_p, suite_p_prime, window_size):
    """Time PR_Dep on P' and compare with PR_Dep on P for the same window."""
    window = make_window(window_size)

    with_duplication = benchmark.pedantic(
        suite_p_prime.dependency.reason, args=(window,), rounds=1, iterations=1, warmup_rounds=0
    )
    without_duplication = suite_p.dependency.reason(window)

    overhead = (
        with_duplication.metrics.latency_seconds / without_duplication.metrics.latency_seconds - 1.0
        if without_duplication.metrics.latency_seconds > 0
        else 0.0
    )

    benchmark.group = "ablation: duplication overhead"
    benchmark.extra_info["window_size"] = window_size
    benchmark.extra_info["duplication_ratio"] = round(with_duplication.metrics.duplication_ratio, 4)
    benchmark.extra_info["overhead"] = round(overhead, 4)

    assert with_duplication.metrics.duplication_ratio > 0
    assert without_duplication.metrics.duplication_ratio == 0


def test_ablation_duplication_report(benchmark):
    """Write the duplication-overhead table (paper reference: up to ~30%)."""
    records = benchmark.pedantic(
        duplication_overhead, kwargs={"window_sizes": WINDOW_SIZES, "seed": 2017}, rounds=1, iterations=1
    )
    lines = ["window  dup_ratio  latency_P'(ms)  latency_P(ms)  overhead"]
    for record in records:
        lines.append(
            f"{record.window_size:6d}  {record.duplication_ratio:9.3f}  "
            f"{record.latency_with_duplication_ms:14.1f}  {record.latency_without_duplication_ms:13.1f}  "
            f"{record.overhead:+8.1%}"
        )
    write_result_table("ablation_duplication.txt", "\n".join(lines))
    benchmark.group = "ablation: duplication overhead"
    assert all(record.duplication_ratio > 0 for record in records)
