"""Regenerate all four figures of the paper as plain-text series tables.

One benchmarked sweep per program (so the table generation itself is timed
and runs under ``--benchmark-only``); the rendered tables are written to
``benchmarks/results/figure07.txt`` .. ``figure10.txt`` and mirrored in
EXPERIMENTS.md.  Each sweep also emits ``BENCH_report_<program>.json``
(machine-readable per-benchmark timings: sweep wall-clock plus the total
per-configuration latencies behind the figures) so the perf trajectory of
the paper reproduction itself is a build artifact, not only a table.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_json import write_bench_json
from benchmarks.conftest import RANDOM_KS, bench_window_sizes, write_result_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import run_figure, run_window_sweep
from repro.experiments.reporting import records_to_csv, render_figure

WINDOW_SIZES = bench_window_sizes()


def _sweep(program: str):
    config = ExperimentConfig(
        program=program,
        window_sizes=WINDOW_SIZES,
        random_partition_counts=RANDOM_KS,
        seed=2017,
    )
    return run_window_sweep(config)


@pytest.mark.parametrize("program,latency_figure,accuracy_figure", [("P", 7, 8), ("P_prime", 9, 10)])
def test_report_regenerates_paper_figures(benchmark, program, latency_figure, accuracy_figure):
    """Run the full window sweep for one program and write its two figures."""
    sweep_started = time.perf_counter()
    records = benchmark.pedantic(_sweep, args=(program,), rounds=1, iterations=1, warmup_rounds=0)
    sweep_seconds = time.perf_counter() - sweep_started

    latency_series = run_figure(latency_figure, records=records)
    accuracy_series = run_figure(accuracy_figure, records=records)

    write_result_table(f"figure{latency_figure:02d}.txt", render_figure(latency_series))
    write_result_table(f"figure{accuracy_figure:02d}.txt", render_figure(accuracy_series))
    write_result_table(f"sweep_{program}.csv", records_to_csv(records))

    # Machine-readable per-benchmark timings: the sweep's wall clock and the
    # total latency of every reasoner configuration across the window sizes.
    metrics = {"sweep_seconds": sweep_seconds}
    for configuration in records[0].latency_ms:
        metrics[f"total_latency_ms_{configuration}"] = sum(
            record.latency_ms[configuration] for record in records
        )
    write_bench_json(
        f"report_{program}",
        metrics,
        meta={"window_sizes": list(WINDOW_SIZES), "figures": [latency_figure, accuracy_figure]},
    )

    benchmark.group = "paper figure regeneration"
    benchmark.extra_info["program"] = program
    benchmark.extra_info["window_sizes"] = list(WINDOW_SIZES)

    # Qualitative claims of the evaluation section.
    for record in records:
        assert record.accuracy["PR_Dep"] == 1.0
        for k in RANDOM_KS:
            assert record.accuracy[f"PR_Ran_k{k}"] <= 1.0
    # Latencies are single-shot and noisy per window, so the latency claim is
    # asserted over the whole sweep: PR_Dep is cheaper than R in aggregate.
    total_dep = sum(record.latency_ms["PR_Dep"] for record in records)
    total_r = sum(record.latency_ms["R"] for record in records)
    assert total_dep < total_r
