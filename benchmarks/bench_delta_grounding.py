#!/usr/bin/env python3
"""Delta-grounding vs full regrounding across slide/size ratios.

Overlapping sliding windows defeat the exact-signature grounding cache: the
fact set changes on every slide, so each window regrounds from scratch even
though most of the instantiation is unchanged.  Delta-grounding repairs the
previous window's instantiation instead (retract expired facts, instantiate
from arrived ones).  This benchmark quantifies the saving as a function of
the slide/size ratio on the paper's synthetic traffic workload:

* per-ratio comparison of total and median per-window *grounding* time,
  full reground (exact cache only, which misses on every slide) vs the
  delta path,
* repair-size metrics: average fact churn and ground-instance churn per
  repaired window, plus the repair/rebuild outcome counts.

Expectation: the delta path wins for overlapping windows (slide <= size/2,
where fact churn <= window size) and converges to parity for tumbling
windows (slide == size), where the overlap gate keeps it off the repair
path entirely.  Medians isolate the steady state from the one-time cost of
building the first repairable state.

Usage::

    PYTHONPATH=src python benchmarks/bench_delta_grounding.py [--quick]

Options::

    --quick           small windows / short stream (CI smoke run)
    --window-size N   triples per window
    --stream-length N triples in the stream
    --ratios R1,R2    comma-separated slide/size ratios (default 0.125,0.25,0.5,1.0)
"""

from __future__ import annotations

import argparse
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import write_bench_json  # noqa: E402
from repro.asp.grounding import GroundingCache  # noqa: E402
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program  # noqa: E402
from repro.streaming.generator import SyntheticStreamConfig, generate_window  # noqa: E402
from repro.streaming.window import CountWindow  # noqa: E402
from repro.streamrule.reasoner import Reasoner  # noqa: E402

RESULTS_DIRECTORY = Path(__file__).parent / "results"
BENCH_SEED = 2017


def make_stream(length: int) -> list:
    config = SyntheticStreamConfig(
        window_size=length,
        input_predicates=INPUT_PREDICATES,
        scheme="traffic",
        seed=BENCH_SEED,
    )
    return generate_window(config)


def run_windows(stream: Sequence, window: CountWindow, use_delta: bool) -> Dict[str, float]:
    """Evaluate every window; return grounding-time and repair statistics."""
    cache = GroundingCache()
    reasoner = Reasoner(
        traffic_program(), INPUT_PREDICATES, EVENT_PREDICATES, grounding_cache=cache
    )
    grounding_ms: List[float] = []
    repair_sizes: List[int] = []
    repair_rules: List[int] = []
    window_sizes: List[int] = []
    for delta in window.deltas(stream):
        result = reasoner.reason(list(delta.window), delta=delta if use_delta else None)
        grounding_ms.append(result.metrics.breakdown.grounding_seconds * 1000.0)
        window_sizes.append(len(delta.window))
        if result.metrics.delta_repairs:
            repair_sizes.append(result.metrics.repair_size)
            repair_rules.append(result.metrics.repair_rules_changed)
    cache_stats = cache.statistics()
    return {
        "windows": float(len(grounding_ms)),
        "total_ms": sum(grounding_ms),
        "median_ms": statistics.median(grounding_ms) if grounding_ms else 0.0,
        "steady_median_ms": statistics.median(grounding_ms[1:]) if len(grounding_ms) > 1 else 0.0,
        "repairs": cache_stats["delta_repairs"],
        "rebuilds": cache_stats["delta_rebuilds"],
        "exact_hits": cache_stats["hits"],
        "mean_repair_size": statistics.mean(repair_sizes) if repair_sizes else 0.0,
        "mean_repair_rules": statistics.mean(repair_rules) if repair_rules else 0.0,
        "mean_window": statistics.mean(window_sizes) if window_sizes else 0.0,
    }


def ratio_section(
    stream: Sequence, window_size: int, ratios: Sequence[float], metrics: Optional[Dict[str, float]] = None
) -> List[str]:
    lines = [
        f"{'slide/size':<12}{'windows':>8}{'full ms':>10}{'delta ms':>10}{'speed-up':>10}"
        f"{'steady x':>10}{'repairs':>9}{'churn':>8}{'rules':>7}",
    ]
    verdicts: List[Tuple[float, float]] = []
    for ratio in ratios:
        slide = max(1, int(window_size * ratio))
        window = CountWindow(size=window_size, slide=slide)
        full = run_windows(stream, window, use_delta=False)
        delta = run_windows(stream, window, use_delta=True)
        speedup = full["total_ms"] / delta["total_ms"] if delta["total_ms"] else float("inf")
        steady = (
            full["steady_median_ms"] / delta["steady_median_ms"]
            if delta["steady_median_ms"]
            else float("inf")
        )
        churn = delta["mean_repair_size"] / delta["mean_window"] if delta["mean_window"] else 0.0
        lines.append(
            f"{ratio:<12.3f}{int(full['windows']):>8}{full['total_ms']:>10.1f}{delta['total_ms']:>10.1f}"
            f"{speedup:>10.2f}{steady:>10.2f}{int(delta['repairs']):>9}{churn:>8.2f}"
            f"{delta['mean_repair_rules']:>7.0f}"
        )
        verdicts.append((ratio, steady))
        if metrics is not None:
            metrics[f"total_speedup_r{ratio:g}"] = speedup
            metrics[f"steady_speedup_r{ratio:g}"] = steady
    lines.append("")
    lines.append("churn = mean repaired facts / window size; rules = mean ground instances")
    lines.append("touched per repair; steady x = median per-window grounding ratio after")
    lines.append("the first window (excludes the one-time repairable-state build).")
    overlapping = [steady for ratio, steady in verdicts if ratio <= 0.5]
    if overlapping:
        verdict = "PASS" if all(steady > 1.0 for steady in overlapping) else "MISS"
        lines.append(
            f"steady-state delta-repair beats full reground for every slide <= size/2: {verdict}"
        )
    return lines


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def ratio_list(text: str) -> Tuple[float, ...]:
    try:
        ratios = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ratios, got {text!r}")
    if not ratios or any(not 0.0 < ratio <= 1.0 for ratio in ratios):
        raise argparse.ArgumentTypeError("ratios must be in (0, 1]")
    return ratios


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true", help="CI smoke run: small windows, short stream")
    parser.add_argument("--window-size", type=positive_int, default=None, help="triples per window")
    parser.add_argument("--stream-length", type=positive_int, default=None, help="triples in the stream")
    parser.add_argument("--ratios", type=ratio_list, default=None, help="slide/size ratios to sweep")
    parser.add_argument("--no-write", action="store_true", help="do not write benchmarks/results/")
    arguments = parser.parse_args(argv)

    window_size = arguments.window_size if arguments.window_size is not None else (400 if arguments.quick else 2000)
    stream_length = (
        arguments.stream_length
        if arguments.stream_length is not None
        else (window_size * 6 if arguments.quick else window_size * 10)
    )
    ratios = arguments.ratios or (0.125, 0.25, 0.5, 1.0)

    lines = [
        "bench_delta_grounding",
        f"stream: {stream_length} triples, traffic scheme, seed {BENCH_SEED}; window size {window_size}",
        "full = exact-signature cache only (misses on every slide); delta = incremental path",
        "",
    ]
    stream = make_stream(stream_length)
    metrics: Dict[str, float] = {}
    lines += ratio_section(stream, window_size, ratios, metrics)

    report = "\n".join(lines)
    print(report)
    if not arguments.no_write:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / "delta_grounding.txt"
        path.write_text(report + "\n")
        bench_path = write_bench_json(
            "delta_grounding",
            metrics,
            meta={"window_size": window_size, "stream_length": stream_length, "quick": arguments.quick},
        )
        print(f"\nwritten to {path} and {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
