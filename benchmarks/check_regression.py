#!/usr/bin/env python3
"""The perf-regression gate: compare ``BENCH_*.json`` against the baseline.

CI runs the quick benchmarks (which emit ``BENCH_<name>.json`` at the repo
root, see :mod:`benchmarks.bench_json`) and then this script, which compares
every metric named in the committed baseline
(``benchmarks/bench_baseline.json``) against the fresh emission within a
tolerance band.  The build fails when a protected metric regresses -- e.g.
the pipelined producer speed-up dropping below its floor, or per-window
dispatch overhead growing past the band.

Baseline schema::

    {
      "default_tolerance": 0.25,
      "benchmarks": {
        "<name>": {                      # matches BENCH_<name>.json
          "metrics": {
            "<metric>": {
              "value": 3.0,              # the recorded baseline
              "direction": "higher",     # "higher" = bigger is better
              "tolerance": 0.25,         # optional per-metric override
              "floor": 1.3,              # optional hard bound ("higher")
              # "ceiling": 25.0,         # optional hard bound ("lower")
              "min_cpu_count": 2         # optional: informational (not
                                         # gated) on hosts with fewer cores
            }
          }
        }
      }
    }

Rules (deliberately strict -- the gate must fail loudly, never rot):

* a baselined benchmark with no emission among the inputs FAILS;
* a baselined metric missing from its emission FAILS (renames must update
  the baseline in the same commit);
* ``direction: higher`` fails when ``current < value * (1 - tolerance)`` or
  below the hard ``floor``; ``direction: lower`` fails when
  ``current > value * (1 + tolerance)`` or above the hard ``ceiling``;
* a metric with ``min_cpu_count`` is demoted to informational (reported,
  never failed) when the emitting host has fewer cores -- parallel
  speed-ups are physically impossible on a single-core CI runner, and a
  gate that fails on hardware rather than on code would rot;
* emitted metrics absent from the baseline are listed as unguarded, so new
  benchmarks show up in the log until someone baselines them.

``--update`` refreshes the recorded ``value`` of every baselined metric from
the current emissions (directions, tolerances, and bounds are kept) -- run
the full benchmarks, eyeball the report, then commit the new baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [BENCH_*.json ...]
    PYTHONPATH=src python benchmarks/check_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_json import REPO_ROOT, load_bench_json  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "bench_baseline.json"
DEFAULT_TOLERANCE = 0.25


def load_baseline(path: Path) -> dict:
    baseline = json.loads(path.read_text())
    if "benchmarks" not in baseline:
        raise ValueError(f"{path}: baseline needs a 'benchmarks' object")
    return baseline


def discover_emissions(paths: Sequence[str]) -> Dict[str, dict]:
    """Map benchmark name -> emission payload for the given (or globbed) files."""
    files = [Path(path) for path in paths] if paths else sorted(REPO_ROOT.glob("BENCH_*.json"))
    emissions: Dict[str, dict] = {}
    for file in files:
        payload = load_bench_json(file)
        emissions[payload["benchmark"]] = payload
    return emissions


def check_metric(name: str, spec: dict, current: Optional[float], default_tolerance: float) -> List[str]:
    """Return failure messages for one metric (empty = pass)."""
    if current is None:
        return [f"{name}: baselined metric missing from the emission"]
    value = float(spec["value"])
    direction = spec.get("direction", "higher")
    tolerance = float(spec.get("tolerance", default_tolerance))
    failures = []
    if direction == "higher":
        band = value * (1.0 - tolerance)
        if current < band:
            failures.append(f"{name}: {current:.3f} fell below the band {band:.3f} (baseline {value:.3f}, -{tolerance:.0%})")
        floor = spec.get("floor")
        if floor is not None and current < float(floor):
            failures.append(f"{name}: {current:.3f} is below the hard floor {float(floor):.3f}")
    elif direction == "lower":
        band = value * (1.0 + tolerance)
        if current > band:
            failures.append(f"{name}: {current:.3f} rose above the band {band:.3f} (baseline {value:.3f}, +{tolerance:.0%})")
        ceiling = spec.get("ceiling")
        if ceiling is not None and current > float(ceiling):
            failures.append(f"{name}: {current:.3f} is above the hard ceiling {float(ceiling):.3f}")
    else:
        failures.append(f"{name}: unknown direction {direction!r} in the baseline")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("emissions", nargs="*", help="BENCH_*.json files (default: glob the repo root)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH, help="baseline file to compare against")
    parser.add_argument("--update", action="store_true", help="refresh baseline values from the current emissions")
    arguments = parser.parse_args(argv)

    baseline = load_baseline(arguments.baseline)
    default_tolerance = float(baseline.get("default_tolerance", DEFAULT_TOLERANCE))
    emissions = discover_emissions(arguments.emissions)

    if arguments.update:
        refreshed = 0
        for bench_name, bench_spec in baseline["benchmarks"].items():
            emission = emissions.get(bench_name)
            if emission is None:
                print(f"[skip] {bench_name}: no emission to update from")
                continue
            for metric_name, spec in bench_spec.get("metrics", {}).items():
                current = emission["metrics"].get(metric_name)
                if current is None:
                    print(f"[skip] {bench_name}.{metric_name}: missing from the emission")
                    continue
                spec["value"] = round(float(current), 4)
                refreshed += 1
        arguments.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"refreshed {refreshed} baseline values into {arguments.baseline}")
        return 0

    failures: List[str] = []
    checked = 0
    for bench_name, bench_spec in baseline["benchmarks"].items():
        emission = emissions.get(bench_name)
        if emission is None:
            failures.append(f"{bench_name}: baselined benchmark produced no BENCH_{bench_name}.json")
            continue
        guarded = bench_spec.get("metrics", {})
        for metric_name, spec in guarded.items():
            current = emission["metrics"].get(metric_name)
            min_cpu_count = spec.get("min_cpu_count")
            if min_cpu_count is not None:
                cpu_count = emission.get("meta", {}).get("cpu_count") or 0
                if cpu_count < int(min_cpu_count):
                    print(
                        f"[info] {bench_name}.{metric_name}: current={current} not gated "
                        f"(host has {cpu_count} core(s), metric needs {min_cpu_count})"
                    )
                    continue
            outcome = check_metric(f"{bench_name}.{metric_name}", spec, current, default_tolerance)
            checked += 1
            if outcome:
                failures.extend(outcome)
                print(f"[FAIL] {bench_name}.{metric_name}: current={current}")
            else:
                print(
                    f"[ ok ] {bench_name}.{metric_name}: current={current:.3f} "
                    f"baseline={float(spec['value']):.3f} ({spec.get('direction', 'higher')})"
                )
        unguarded = sorted(set(emission["metrics"]) - set(guarded))
        if unguarded:
            print(f"[info] {bench_name}: unguarded metrics: {', '.join(unguarded)}")
    for bench_name in sorted(set(emissions) - set(baseline["benchmarks"])):
        print(f"[info] {bench_name}: emission has no baseline entry (not gated)")

    if failures:
        print(f"\nperf-regression gate: {len(failures)} failure(s) over {checked} guarded metric(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nperf-regression gate: all {checked} guarded metrics within the band")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
