"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` / ``python setup.py develop`` work on
offline environments whose setuptools lacks the PEP 660 editable-wheel hook
(which requires the ``wheel`` package).
"""

from setuptools import setup

setup()
